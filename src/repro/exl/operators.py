"""The EXL operator registry.

Section 3 classifies operators as *tuple-level* (scalar and vectorial:
a result value depends on at most one tuple per operand) and
*multi-tuple* (aggregations and whole-cube black boxes: a result value
depends on a set of tuples).  This registry is the single source of
truth for every stage of the pipeline:

* the semantic checker uses signatures to type expressions;
* the mapping generator uses the classification to pick a tgd shape;
* the chase and each backend use the registered implementations;
* the determination engine uses ``targets`` (technical metadata) to
  decide which target systems support a cube's operators natively.

Backend names used in ``targets``: ``sql``, ``r``, ``matlab``, ``etl``,
``chase`` (the chase reference executor supports everything).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import OperatorError
from ..model.time import Frequency, TimePoint, convert
from ..stats import aggregates as _agg
from ..stats import regression as _reg
from ..stats import series_ops as _ser
from ..stats import smoothing as _smooth
from ..stats import decomposition as _dec

__all__ = [
    "OpKind",
    "OperatorSpec",
    "OperatorRegistry",
    "default_registry",
    "ALL_TARGETS",
    "OUTER_DEFAULTS",
    "period_for_frequency",
]

ALL_TARGETS = frozenset({"sql", "r", "matlab", "etl", "chase"})

#: built-in defaults of the outer vectorial operators (Section 3's
#: "default value for the missing tuples"); overridable per call.
OUTER_DEFAULTS = {"osum": 0.0, "odiff": 0.0, "oprod": 1.0}


class OpKind(enum.Enum):
    """Operator classes, following Section 3."""

    SCALAR = "scalar"  # tuple-level, one cube operand + scalar params
    SHIFT = "shift"  # tuple-level, transforms a (time) dimension
    OUTER_VECTORIAL = "outer_vectorial"  # tuple-level, default for missing tuples
    AGGREGATION = "aggregation"  # multi-tuple, group-by roll-up
    TABLE_FUNCTION = "table_function"  # multi-tuple black box, cube -> cube
    DIM_FUNCTION = "dim_function"  # scalar function on dimension values


# A table function receives the operand's rows — ``(point, value)`` pairs
# sorted by time — plus resolved parameters, and returns result rows.
SeriesRows = List[Tuple[TimePoint, float]]
TableFunc = Callable[[SeriesRows, Dict[str, Any]], SeriesRows]


@dataclass(frozen=True)
class OperatorSpec:
    """Registry record for one named operator."""

    name: str
    kind: OpKind
    impl: Callable
    # scalar params accepted after the cube operand(s): (name, required)
    params: Tuple[Tuple[str, bool], ...] = ()
    targets: FrozenSet[str] = ALL_TARGETS
    doc: str = ""

    @property
    def required_params(self) -> int:
        return sum(1 for _, required in self.params if required)

    def validate_param_count(self, given: int) -> None:
        if given < self.required_params or given > len(self.params):
            raise OperatorError(
                f"operator {self.name} takes {self.required_params}"
                f"..{len(self.params)} parameters, got {given}"
            )


class OperatorRegistry:
    """Name-indexed collection of operator specs, extensible by users."""

    def __init__(self):
        self._specs: Dict[str, OperatorSpec] = {}

    def register(self, spec: OperatorSpec) -> None:
        key = spec.name.lower()
        if key in self._specs:
            raise OperatorError(f"operator {spec.name} already registered")
        self._specs[key] = spec

    def get(self, name: str) -> OperatorSpec:
        try:
            return self._specs[name.lower()]
        except KeyError:
            raise OperatorError(f"unknown operator {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._specs

    def names(self, kind: Optional[OpKind] = None) -> List[str]:
        if kind is None:
            return sorted(self._specs)
        return sorted(n for n, s in self._specs.items() if s.kind is kind)

    def copy(self) -> "OperatorRegistry":
        clone = OperatorRegistry()
        clone._specs = dict(self._specs)
        return clone

    def describe_markdown(self) -> str:
        """A markdown reference of every registered operator.

        Grouped by class, listing parameters and the target systems
        that support each operator natively (the technical metadata
        the determination engine partitions by).
        """
        titles = {
            OpKind.SCALAR: "Tuple-level scalar operators",
            OpKind.SHIFT: "Tuple-level dimension transforms",
            OpKind.OUTER_VECTORIAL: "Vectorial operators with defaults",
            OpKind.AGGREGATION: "Multi-tuple aggregations (use with `group by`)",
            OpKind.TABLE_FUNCTION: "Multi-tuple whole-cube operators",
            OpKind.DIM_FUNCTION: "Dimension functions (usable in `group by`)",
        }
        lines = ["# EXL operator reference", ""]
        for kind, title in titles.items():
            names = self.names(kind)
            if not names:
                continue
            lines.append(f"## {title}")
            lines.append("")
            lines.append("| operator | parameters | native targets | description |")
            lines.append("|---|---|---|---|")
            for name in names:
                spec = self.get(name)
                params = ", ".join(
                    f"{p}" + ("" if required else "?")
                    for p, required in spec.params
                ) or "—"
                targets = ", ".join(sorted(spec.targets - {"chase"}))
                lines.append(
                    f"| `{spec.name}` | {params} | {targets} | {spec.doc or ''} |"
                )
            lines.append("")
        lines.append(_OLAP_EPILOGUE)
        return "\n".join(lines)


# closes the generated operator reference (docs/OPERATORS.md): the
# dimension functions feed straight into the OLAP layer's hierarchies,
# so the worked query example lives next to their table
_OLAP_EPILOGUE = """\
## Dimension hierarchies and cross-tabs (`exl query`)

The dimension functions above induce the query-side hierarchies of the
OLAP layer (DESIGN.md §11): a `TIME(MONTH)` dimension can be rolled up
to `quarter`, `year`, or `all` without re-running anything, because
every lattice node is materialized when the program runs. A worked
example — quarterly sales for two regions:

```text
G := sum(S, group by quarter(m) as q, r)
```

with `S` holding monthly values for `north`/`south` over 2020. After
`exl run project.json --out out/`, a sub-totaled cross-tab (Gray's
data cube: the `total` row and column are the ALL cells, maintained
aggregates rather than sums of the printed cells):

```console
$ exl query project.json G --out out/ --crosstab q,r
q       north  south  total
------  -----  -----  -----
2020Q1    330    363    693
2020Q2    420    462    882
2020Q3    510    561   1071
2020Q4    600    660   1260
 total   1860   2046   3906
```

Rolling up the time axis instead, with the region axis collapsed:

```console
$ exl query project.json G --out out/ --levels q=year,r=all
q:year  sum
------  ----
2020    3906
```

(the monthly values here are `north = 100, 110, …, 210` and
`south = 1.1 × north`, so e.g. `2020Q1/north = 100 + 110 + 120 = 330`)

A declared grouping adds a level to a flat dimension — in the project
file, `"groupings": {"G": {"r": {"zone": {"north": "cold", "south":
"warm"}}}}` — after which `--levels r=zone` aggregates by zone, and
`--dice r=cold` keeps only the cold rows. `--point "q=2020Q1,r=north"`
prints the single base cell, and `--drilldown q` steps one level finer
from wherever `--levels` put the time axis. All of it answers from the
persisted lattice sidecar (`out/baseline/olap/G.json`) without loading
a CSV.
"""


# ---------------------------------------------------------------------------
# default operator implementations
# ---------------------------------------------------------------------------

def period_for_frequency(freq: Frequency) -> Optional[int]:
    """Natural seasonal period of a frequency (quarterly -> 4 etc.)."""
    return {
        Frequency.QUARTER: 4,
        Frequency.MONTH: 12,
        Frequency.WEEK: 52,
        Frequency.DAY: 7,
    }.get(freq)


def _safe_div(a: float, b: float) -> float:
    if b == 0:
        raise OperatorError("division by zero")
    return a / b


def _scalar_log(value: float, base: float = math.e) -> float:
    if value <= 0:
        raise OperatorError(f"log of non-positive value {value}")
    if base <= 0 or base == 1:
        raise OperatorError(f"invalid log base {base}")
    return math.log(value, base)


def _series_transform(fn: Callable[[Sequence[float]], Sequence[float]]) -> TableFunc:
    """Lift a values->values transform (same length) into a table function."""

    def wrapper(rows: SeriesRows, params: Dict[str, Any]) -> SeriesRows:
        points = [p for p, _ in rows]
        values = fn([v for _, v in rows])
        return list(zip(points, values))

    return wrapper


def _tf_stl_component(component: str) -> TableFunc:
    def wrapper(rows: SeriesRows, params: Dict[str, Any]) -> SeriesRows:
        period = int(params["period"])
        points = [p for p, _ in rows]
        values = [v for _, v in rows]
        decomposition = _dec.stl_decompose(values, period)
        out = getattr(decomposition, component)
        return list(zip(points, out))

    return wrapper


def _tf_classical_component(component: str) -> TableFunc:
    def wrapper(rows: SeriesRows, params: Dict[str, Any]) -> SeriesRows:
        period = int(params["period"])
        points = [p for p, _ in rows]
        values = [v for _, v in rows]
        decomposition = _dec.classical_decompose(values, period)
        out = getattr(decomposition, component)
        return list(zip(points, out))

    return wrapper


def _tf_moving_average(rows: SeriesRows, params: Dict[str, Any]) -> SeriesRows:
    window = int(params["window"])
    points = [p for p, _ in rows]
    values = _smooth.moving_average([v for _, v in rows], window)
    return list(zip(points, values))


def _tf_loess(rows: SeriesRows, params: Dict[str, Any]) -> SeriesRows:
    frac = float(params.get("frac", 0.5))
    points = [p for p, _ in rows]
    values = _smooth.loess([v for _, v in rows], frac=frac)
    return list(zip(points, values))


def _tf_diff(rows: SeriesRows, params: Dict[str, Any]) -> SeriesRows:
    # first difference: defined from the second point on
    values = [v for _, v in rows]
    diffed = _ser.first_difference(values)
    return list(zip([p for p, _ in rows][1:], diffed))


def _tf_rebase(rows: SeriesRows, params: Dict[str, Any]) -> SeriesRows:
    points = [p for p, _ in rows]
    values = _ser.index_to_base([v for _, v in rows], int(params.get("position", 0)))
    return list(zip(points, values))


def default_registry() -> OperatorRegistry:
    """The standard EXL operator set described in Section 3."""
    registry = OperatorRegistry()

    # -- tuple-level scalar functions (measure -> measure) ---------------
    scalar_specs = [
        ("ln", lambda v: _scalar_log(v), (), "natural logarithm"),
        ("log", _scalar_log, (("base", False),), "logarithm; log(C, base)"),
        ("exp", math.exp, (), "exponential"),
        ("abs", abs, (), "absolute value"),
        ("sqrt", lambda v: math.sqrt(v), (), "square root"),
        ("sin", math.sin, (), "sine"),
        ("cos", math.cos, (), "cosine"),
        ("round", lambda v, nd=0.0: round(v, int(nd)), (("digits", False),), "round"),
        ("pow", lambda v, e: v**e, (("exponent", True),), "power with scalar exponent"),
    ]
    for name, impl, params, doc in scalar_specs:
        registry.register(
            OperatorSpec(name, OpKind.SCALAR, impl, params, ALL_TARGETS, doc)
        )

    # -- tuple-level vectorial operators with default values --------------
    # Section 3 notes versions of vectorial operators "assuming a default
    # value for the 'missing' tuples (example, in the sum operator, we
    # could have zero as the default value)": the result is defined on
    # the UNION of the operands' dimension tuples, a missing side
    # contributing the default.  The arithmetic symbol is the impl here.
    outer_specs = [
        ("osum", "+", 0.0, "outer sum: missing tuples count as the default (0)"),
        ("odiff", "-", 0.0, "outer difference with default 0"),
        ("oprod", "*", 1.0, "outer product with default 1"),
    ]
    for name, symbol, default, doc in outer_specs:
        registry.register(
            OperatorSpec(
                name,
                OpKind.OUTER_VECTORIAL,
                symbol,  # the arithmetic symbol; executors combine with it
                (("default", False),),
                ALL_TARGETS,
                doc,
            )
        )

    # -- tuple-level dimension transform ---------------------------------
    registry.register(
        OperatorSpec(
            "shift",
            OpKind.SHIFT,
            lambda point, s: point.shift(int(s)),
            (("periods", True), ("dimension", False)),
            ALL_TARGETS,
            "shift(C, s [, dim]): C's value at t appears at t + s",
        )
    )

    # -- multi-tuple aggregations -----------------------------------------
    for agg_name, agg_impl in _agg.AGGREGATES.items():
        registry.register(
            OperatorSpec(
                agg_name,
                OpKind.AGGREGATION,
                agg_impl,
                (),
                ALL_TARGETS,
                f"{agg_name} aggregation with group by",
            )
        )

    # -- dimension functions (usable in group by and shift targets) --------
    dim_funcs = [
        ("quarter", Frequency.QUARTER),
        ("month", Frequency.MONTH),
        ("year", Frequency.YEAR),
        ("week", Frequency.WEEK),
    ]
    for fname, freq in dim_funcs:
        registry.register(
            OperatorSpec(
                fname,
                OpKind.DIM_FUNCTION,
                (lambda f: (lambda tp: convert(tp, f)))(freq),
                (),
                ALL_TARGETS,
                f"time value down-sampled to {freq.name}",
            )
        )

    # -- multi-tuple black boxes (whole-cube table functions) ---------------
    # The paper's stl operators are flagged as unsupported on the plain
    # ETL calculator (they need a user-defined step) and as natively
    # available in r/matlab/sql-with-tabular-functions; our engines
    # support all of them, but the *technical metadata* below mirrors
    # the paper's discussion that not all operators are native everywhere.
    stat_targets = frozenset({"sql", "r", "matlab", "etl", "chase"})
    table_specs = [
        ("stl_t", _tf_stl_component("trend"), (("period", False),), "STL trend"),
        ("stl_s", _tf_stl_component("seasonal"), (("period", False),), "STL seasonal"),
        ("stl_r", _tf_stl_component("remainder"), (("period", False),), "STL remainder"),
        (
            "decomp_t",
            _tf_classical_component("trend"),
            (("period", False),),
            "classical decomposition trend",
        ),
        (
            "decomp_s",
            _tf_classical_component("seasonal"),
            (("period", False),),
            "classical decomposition seasonal",
        ),
        ("ma", _tf_moving_average, (("window", True),), "trailing moving average"),
        ("loess", _tf_loess, (("frac", False),), "loess smoother"),
        ("cumsum", _series_transform(_ser.cumsum), (), "running sum"),
        ("standardize", _series_transform(_ser.standardize), (), "z-scores"),
        ("fitted", _series_transform(_reg.fitted_line), (), "OLS fitted line"),
        ("detrend", _series_transform(_reg.residuals), (), "OLS residuals"),
        ("diff", _tf_diff, (), "first difference"),
        ("rebase", _tf_rebase, (("position", False),), "index to base 100"),
    ]
    for name, impl, params, doc in table_specs:
        registry.register(
            OperatorSpec(name, OpKind.TABLE_FUNCTION, impl, params, stat_targets, doc)
        )

    return registry
