"""Validated EXL programs.

:class:`Program` couples a parsed AST with the result of semantic
analysis: the full schema (elementary + inferred derived cubes), the
elementary/derived partition, and the operator registry in force.
It is the unit every later stage (normalizer, mapping generator,
determination engine) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ExlSemanticError
from ..model.cube import CubeSchema
from ..model.schema import Schema
from .ast import ProgramAst, Statement, cube_refs
from .operators import OperatorRegistry, default_registry
from .parser import parse_program
from .semantics import SemanticAnalyzer

__all__ = ["ValidatedStatement", "Program"]


@dataclass(frozen=True)
class ValidatedStatement:
    """A statement together with the inferred schema of its target."""

    ast: Statement
    schema: CubeSchema

    @property
    def target(self) -> str:
        return self.ast.target

    @property
    def expr(self):
        return self.ast.expr

    def __str__(self) -> str:
        return str(self.ast)


class Program:
    """A semantically valid EXL program."""

    def __init__(
        self,
        ast: ProgramAst,
        statements: List[ValidatedStatement],
        schema: Schema,
        elementary: List[str],
        derived: List[str],
        registry: OperatorRegistry,
        source: str = "",
    ):
        self.ast = ast
        self.statements = statements
        self.schema = schema
        self.elementary = elementary
        self.derived = derived
        self.registry = registry
        self.source = source

    # -- construction ----------------------------------------------------
    @classmethod
    def compile(
        cls,
        source: str,
        schema: Schema,
        registry: Optional[OperatorRegistry] = None,
    ) -> "Program":
        """Parse and validate EXL source against a schema of elementary cubes."""
        return cls.from_ast(parse_program(source), schema, registry, source)

    @classmethod
    def from_ast(
        cls,
        ast: ProgramAst,
        schema: Schema,
        registry: Optional[OperatorRegistry] = None,
        source: str = "",
    ) -> "Program":
        registry = registry or default_registry()
        analyzer = SemanticAnalyzer(schema, registry)
        inferred, elementary, derived = analyzer.analyze(ast)
        for name in elementary:
            if name not in schema:
                raise ExlSemanticError(
                    f"cube {name!r} is neither declared elementary nor derived"
                )
        full = schema.copy("program")
        statements = []
        for statement, cube_schema in zip(ast, inferred):
            full.replace(cube_schema)
            statements.append(ValidatedStatement(statement, cube_schema))
        return cls(ast, statements, full, elementary, derived, registry, source)

    # -- queries -----------------------------------------------------------
    def statement_for(self, cube_name: str) -> ValidatedStatement:
        for statement in self.statements:
            if statement.target == cube_name:
                return statement
        raise ExlSemanticError(f"no statement defines cube {cube_name!r}")

    def dependencies(self) -> List[Tuple[str, str]]:
        """Edges ``(operand_cube, derived_cube)`` of the program DAG.

        An edge ``A -> C`` means C is calculated from A (Section 6).
        """
        edges = []
        for statement in self.statements:
            for operand in cube_refs(statement.expr):
                edges.append((operand, statement.target))
        return edges

    def schema_of(self, name: str) -> CubeSchema:
        return self.schema[name]

    def __len__(self) -> int:
        return len(self.statements)

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.statements)
