"""Semantic analysis of EXL programs.

Implements the static rules of Section 3:

* cube identifiers split into *elementary* (declared, base data) and
  *derived* (defined by exactly one statement);
* a derived cube may only use elementary cubes and cubes derived in
  *previous* statements — no recursion, no forward references;
* a cube identifier appears as lhs at most once;
* expressions type-check: vectorial operands share dimensions, shift
  targets a time dimension, aggregations group by dimensions of their
  operand, black-box table functions take a time series.

The analyzer also *infers* the schema of every derived cube, checking
it against the declared schema when one exists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ExlSemanticError
from ..model.cube import CubeSchema, Dimension
from ..model.schema import Schema
from ..model.time import Frequency
from ..model.types import TIME
from .ast import BinOp, Call, CubeRef, Expr, GroupItem, Number, ProgramAst, Statement, String, UnaryOp
from .operators import OperatorRegistry, OpKind, default_registry

__all__ = ["SemanticAnalyzer", "infer_expression_schema", "split_call_args"]

# A "signature" is the inferred shape of an expression: None for a
# scalar, or a CubeSchema (with a synthetic name) for a cube-valued one.
Signature = Optional[CubeSchema]

_ANON = "_expr"


def _is_scalar_literal(expr: Expr) -> bool:
    if isinstance(expr, UnaryOp):
        return _is_scalar_literal(expr.operand)
    return isinstance(expr, (Number, String))


def _literal_number(expr: Expr) -> Optional[float]:
    """The numeric value of a (possibly negated) number literal, else None."""
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = _literal_number(expr.operand)
        return None if inner is None else -inner
    return None


class SemanticAnalyzer:
    """Checks a program AST against a schema of elementary cubes."""

    def __init__(self, schema: Schema, registry: Optional[OperatorRegistry] = None):
        self.base_schema = schema
        self.registry = registry or default_registry()

    # -- program-level -------------------------------------------------
    def analyze(self, ast: ProgramAst) -> Tuple[List[CubeSchema], List[str], List[str]]:
        """Validate the program.

        Returns ``(per_statement_schemas, elementary_names, derived_names)``
        where ``per_statement_schemas[i]`` is the inferred schema of the
        i-th statement's target.
        """
        env: Dict[str, CubeSchema] = {c.name: c for c in self.base_schema}
        derived: List[str] = []
        inferred: List[CubeSchema] = []
        used: List[str] = []
        for statement in ast:
            self._check_target(statement, derived)
            signature = self.infer(statement.expr, env)
            if signature is None:
                raise ExlSemanticError(
                    f"statement {statement.target!r} assigns a scalar, not a cube "
                    f"(line {statement.line})"
                )
            result = signature.renamed(statement.target)
            declared = self.base_schema.get(statement.target)
            if declared is not None and declared.dimensions != result.dimensions:
                raise ExlSemanticError(
                    f"inferred schema of {statement.target} "
                    f"({_dims(result)}) does not match its declaration ({_dims(declared)})"
                )
            env[statement.target] = result
            derived.append(statement.target)
            inferred.append(result)
            for name in _refs(statement.expr):
                if name not in used:
                    used.append(name)
        elementary = [n for n in used if n not in derived]
        return inferred, elementary, derived

    def _check_target(self, statement: Statement, derived: List[str]) -> None:
        if statement.target in derived:
            raise ExlSemanticError(
                f"cube {statement.target} defined more than once "
                f"(a cube identifier must not appear as lhs twice)"
            )

    # -- expression-level ------------------------------------------------
    def infer(self, expr: Expr, env: Dict[str, CubeSchema]) -> Signature:
        """Infer the signature of an expression; raises on type errors."""
        if isinstance(expr, Number):
            return None
        if isinstance(expr, String):
            raise ExlSemanticError(
                f"string literal {expr.value!r} used outside an operator parameter"
            )
        if isinstance(expr, CubeRef):
            if expr.name not in env:
                raise ExlSemanticError(
                    f"unknown cube {expr.name!r} (not elementary and not derived "
                    f"by a previous statement)"
                )
            return env[expr.name]
        if isinstance(expr, UnaryOp):
            return self.infer(expr.operand, env)
        if isinstance(expr, BinOp):
            return self._infer_binop(expr, env)
        if isinstance(expr, Call):
            return self._infer_call(expr, env)
        raise ExlSemanticError(f"unsupported expression node {type(expr).__name__}")

    def _infer_binop(self, expr: BinOp, env: Dict[str, CubeSchema]) -> Signature:
        left = self.infer(expr.left, env)
        right = self.infer(expr.right, env)
        if left is None and right is None:
            return None
        if left is not None and right is not None:
            if expr.op == "^":
                raise ExlSemanticError("cube ^ cube is not a supported operator")
            if left.dimensions != right.dimensions:
                raise ExlSemanticError(
                    f"vectorial operator {expr.op!r} needs operands with the "
                    f"same dimensions: {_dims(left)} vs {_dims(right)}"
                )
            return left.renamed(_ANON)
        cube = left if left is not None else right
        return cube.renamed(_ANON)

    def _infer_call(self, expr: Call, env: Dict[str, CubeSchema]) -> Signature:
        spec = self.registry.get(expr.name)
        if spec.kind is OpKind.DIM_FUNCTION:
            raise ExlSemanticError(
                f"dimension function {expr.name!r} may only appear in a "
                f"group by clause"
            )
        if expr.group_by and spec.kind is not OpKind.AGGREGATION:
            raise ExlSemanticError(
                f"group by is only valid with aggregation operators, "
                f"not {expr.name!r}"
            )
        cube_args, scalar_args = split_call_args(self, expr, env)
        if spec.kind is OpKind.SCALAR:
            return self._infer_scalar_call(expr, spec, cube_args, scalar_args)
        if spec.kind is OpKind.OUTER_VECTORIAL:
            return self._infer_outer_vectorial(expr, spec, cube_args, scalar_args)
        if spec.kind is OpKind.SHIFT:
            return self._infer_shift(expr, cube_args, scalar_args)
        if spec.kind is OpKind.AGGREGATION:
            return self._infer_aggregation(expr, cube_args, scalar_args)
        return self._infer_table_function(expr, spec, cube_args, scalar_args)

    def _infer_scalar_call(self, expr, spec, cube_args, scalar_args) -> Signature:
        if len(cube_args) > 1:
            raise ExlSemanticError(
                f"scalar operator {expr.name} takes one cube operand, got "
                f"{len(cube_args)}"
            )
        spec.validate_param_count(len(scalar_args))
        if not cube_args:
            return None  # constant folding handles all-scalar calls
        return cube_args[0][1].renamed(_ANON)

    def _infer_outer_vectorial(self, expr, spec, cube_args, scalar_args) -> Signature:
        """Vectorial operator with a default for missing tuples: the
        result is defined on the union of the operands' dimension
        tuples (Section 3's default-value variant)."""
        if len(cube_args) != 2:
            raise ExlSemanticError(
                f"operator {expr.name} takes exactly two cube operands"
            )
        spec.validate_param_count(len(scalar_args))
        if scalar_args and _literal_number(scalar_args[0][1]) is None:
            raise ExlSemanticError(
                f"operator {expr.name}: the default must be a number literal"
            )
        left, right = cube_args[0][1], cube_args[1][1]
        if left.dimensions != right.dimensions:
            raise ExlSemanticError(
                f"operator {expr.name} needs operands with the same "
                f"dimensions: {_dims(left)} vs {_dims(right)}"
            )
        return left.renamed(_ANON)

    def _infer_shift(self, expr, cube_args, scalar_args) -> Signature:
        if len(cube_args) != 1:
            raise ExlSemanticError("shift takes exactly one cube operand")
        schema = cube_args[0][1]
        if not scalar_args:
            raise ExlSemanticError("shift needs a periods parameter: shift(C, s)")
        periods = _literal_number(scalar_args[0][1])
        if periods is None or periods != int(periods):
            raise ExlSemanticError("shift periods must be an integer literal")
        dim_name = None
        if len(scalar_args) > 1:
            dim_arg = scalar_args[1][1]
            if not isinstance(dim_arg, String):
                raise ExlSemanticError("shift dimension must be a string literal")
            dim_name = dim_arg.value
        if len(scalar_args) > 2:
            raise ExlSemanticError("shift takes at most shift(C, s, \"dim\")")
        target = self._resolve_shift_dimension(schema, dim_name)
        if not target.dtype.is_time:
            raise ExlSemanticError(
                f"shift targets dimension {target.name!r}, which is not a time "
                f"dimension"
            )
        return schema.renamed(_ANON)

    def _resolve_shift_dimension(
        self, schema: CubeSchema, dim_name: Optional[str]
    ) -> Dimension:
        if dim_name is not None:
            return schema.dimension(dim_name)
        times = schema.time_dimensions
        if len(times) != 1:
            raise ExlSemanticError(
                f"shift on a cube with {len(times)} time dimensions needs an "
                f"explicit dimension: shift(C, s, \"dim\")"
            )
        return times[0]

    def _infer_aggregation(self, expr, cube_args, scalar_args) -> Signature:
        if len(cube_args) != 1:
            raise ExlSemanticError(
                f"aggregation {expr.name} takes exactly one cube operand"
            )
        if scalar_args:
            raise ExlSemanticError(
                f"aggregation {expr.name} takes no scalar parameters"
            )
        operand = cube_args[0][1]
        dims: List[Dimension] = []
        seen = set()
        for item in expr.group_by:
            dimension = self._group_item_dimension(expr.name, operand, item)
            if dimension.name in seen:
                raise ExlSemanticError(
                    f"duplicate result dimension {dimension.name!r} in group by"
                )
            seen.add(dimension.name)
            dims.append(dimension)
        return CubeSchema(_ANON, dims, operand.measure)

    def _group_item_dimension(
        self, agg_name: str, operand: CubeSchema, item: GroupItem
    ) -> Dimension:
        source = operand.dimension(item.dim)  # raises if unknown
        if item.func is None:
            return Dimension(item.result_name, source.dtype)
        spec = self.registry.get(item.func)
        if spec.kind is not OpKind.DIM_FUNCTION:
            raise ExlSemanticError(
                f"{item.func!r} is not a dimension function and cannot appear "
                f"in group by"
            )
        if not source.dtype.is_time:
            raise ExlSemanticError(
                f"dimension function {item.func} applied to non-time dimension "
                f"{item.dim!r}"
            )
        target_freq = _dim_function_frequency(item.func)
        if target_freq.rank >= source.dtype.freq.rank:
            raise ExlSemanticError(
                f"{item.func}({item.dim}) would convert {source.dtype} to a "
                f"frequency that is not coarser"
            )
        return Dimension(item.result_name, TIME(target_freq))

    def _infer_table_function(self, expr, spec, cube_args, scalar_args) -> Signature:
        if len(cube_args) != 1:
            raise ExlSemanticError(
                f"table function {expr.name} takes exactly one cube operand"
            )
        spec.validate_param_count(len(scalar_args))
        operand = cube_args[0][1]
        if not operand.is_time_series:
            raise ExlSemanticError(
                f"table function {expr.name} needs a time series operand "
                f"(one time dimension), got dimensions {_dims(operand)}"
            )
        return operand.renamed(_ANON)


def split_call_args(
    analyzer: SemanticAnalyzer, expr: Call, env: Dict[str, CubeSchema]
):
    """Partition a call's arguments into cube-valued and scalar ones.

    Returns ``(cube_args, scalar_args)``, each a list of
    ``(position, value)`` pairs — the value is the signature for cube
    args and the literal Expr for scalar args.  Nested cube-valued
    expressions are allowed (the normalizer hoists them later).
    """
    cube_args = []
    scalar_args = []
    for position, arg in enumerate(expr.args):
        if _is_scalar_literal(arg):
            scalar_args.append((position, arg))
            continue
        signature = analyzer.infer(arg, env)
        if signature is None:
            scalar_args.append((position, arg))
        else:
            cube_args.append((position, signature))
    return cube_args, scalar_args


def _dim_function_frequency(func: str) -> Frequency:
    return {
        "quarter": Frequency.QUARTER,
        "month": Frequency.MONTH,
        "year": Frequency.YEAR,
        "week": Frequency.WEEK,
    }[func.lower()]


def _refs(expr: Expr) -> List[str]:
    from .ast import cube_refs

    return cube_refs(expr)


def _dims(schema: CubeSchema) -> str:
    return "(" + ", ".join(str(d) for d in schema.dimensions) + ")"


def infer_expression_schema(
    expr: Expr, schema: Schema, registry: Optional[OperatorRegistry] = None
) -> Signature:
    """Convenience: infer one expression's signature against a schema."""
    analyzer = SemanticAnalyzer(schema, registry)
    env = {c.name: c for c in schema}
    return analyzer.infer(expr, env)
