"""Token definitions for the EXL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType(enum.Enum):
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    ASSIGN = ":="  # statement assignment
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    CARET = "^"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    NEWLINE = "NEWLINE"
    KW_GROUP = "group"
    KW_BY = "by"
    KW_AS = "as"
    EOF = "EOF"


KEYWORDS = {
    "group": TokenType.KW_GROUP,
    "by": TokenType.KW_BY,
    "as": TokenType.KW_AS,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    value: Any
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.type.name}({self.value!r})@{self.line}:{self.column}"
