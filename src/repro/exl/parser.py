"""Recursive-descent parser for EXL.

Grammar (statements separated by newlines or ``;``)::

    program    := statement*
    statement  := IDENT ":=" expr
    expr       := additive
    additive   := multiplicative (("+" | "-") multiplicative)*
    multiplicative := unary (("*" | "/") unary)*
    unary      := "-" unary | power
    power      := primary ("^" unary)?
    primary    := NUMBER | STRING | IDENT | call | "(" expr ")"
    call       := IDENT "(" [expr ("," expr)*] ["," "group" "by" groups] ")"
    groups     := groupitem ("," groupitem)*
    groupitem  := IDENT ["as" IDENT] | IDENT "(" IDENT ")" ["as" IDENT]
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ExlSyntaxError
from .ast import BinOp, Call, CubeRef, Expr, GroupItem, Number, ProgramAst, Statement, String, UnaryOp
from .lexer import tokenize
from .tokens import Token, TokenType

__all__ = ["parse_program", "parse_expression"]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, ttype: TokenType) -> bool:
        return self._peek().type is ttype

    def _match(self, ttype: TokenType) -> Optional[Token]:
        if self._check(ttype):
            return self._advance()
        return None

    def _expect(self, ttype: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not ttype:
            raise ExlSyntaxError(
                f"expected {what}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._match(TokenType.NEWLINE):
            pass

    # -- grammar --------------------------------------------------------
    def parse_program(self) -> ProgramAst:
        statements = []
        self._skip_newlines()
        while not self._check(TokenType.EOF):
            statements.append(self._statement())
            self._skip_newlines()
        return ProgramAst(statements)

    def _statement(self) -> Statement:
        target = self._expect(TokenType.IDENT, "a cube identifier")
        self._expect(TokenType.ASSIGN, "':='")
        expr = self._expression()
        token = self._peek()
        if token.type not in (TokenType.NEWLINE, TokenType.EOF):
            raise ExlSyntaxError(
                f"unexpected {token.value!r} after expression", token.line, token.column
            )
        return Statement(target.value, expr, target.line)

    def _expression(self) -> Expr:
        return self._additive()

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            if self._match(TokenType.PLUS):
                left = BinOp("+", left, self._multiplicative())
            elif self._match(TokenType.MINUS):
                left = BinOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            if self._match(TokenType.STAR):
                left = BinOp("*", left, self._unary())
            elif self._match(TokenType.SLASH):
                left = BinOp("/", left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self._match(TokenType.MINUS):
            return UnaryOp("-", self._unary())
        return self._power()

    def _power(self) -> Expr:
        base = self._primary()
        if self._match(TokenType.CARET):
            return BinOp("^", base, self._unary())  # right associative
        return base

    def _primary(self) -> Expr:
        token = self._peek()
        if self._match(TokenType.NUMBER):
            return Number(token.value)
        if self._match(TokenType.STRING):
            return String(token.value)
        if self._match(TokenType.LPAREN):
            inner = self._expression()
            self._expect(TokenType.RPAREN, "')'")
            return inner
        if self._check(TokenType.IDENT):
            ident = self._advance()
            if self._match(TokenType.LPAREN):
                return self._call(ident)
            return CubeRef(ident.value)
        raise ExlSyntaxError(
            f"expected an expression, found {token.value!r}", token.line, token.column
        )

    def _call(self, name_token: Token) -> Call:
        args: List[Expr] = []
        group_by: Tuple[GroupItem, ...] = ()
        if not self._check(TokenType.RPAREN):
            while True:
                if self._check(TokenType.KW_GROUP):
                    group_by = self._group_clause()
                    break
                args.append(self._expression())
                if not self._match(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN, "')'")
        return Call(name_token.value, args, group_by)

    def _group_clause(self) -> Tuple[GroupItem, ...]:
        self._expect(TokenType.KW_GROUP, "'group'")
        self._expect(TokenType.KW_BY, "'by'")
        items = [self._group_item()]
        while self._match(TokenType.COMMA):
            items.append(self._group_item())
        return tuple(items)

    def _group_item(self) -> GroupItem:
        first = self._expect(TokenType.IDENT, "a dimension name")
        func = None
        dim = first.value
        if self._match(TokenType.LPAREN):
            inner = self._expect(TokenType.IDENT, "a dimension name")
            self._expect(TokenType.RPAREN, "')'")
            func = first.value
            dim = inner.value
        alias = None
        if self._match(TokenType.KW_AS):
            alias = self._expect(TokenType.IDENT, "an alias").value
        return GroupItem(dim, func, alias)


def parse_program(source: str) -> ProgramAst:
    """Parse an EXL program (one statement per line) into an AST."""
    return _Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> Expr:
    """Parse a single EXL expression (useful in tests and tools)."""
    parser = _Parser(tokenize(source))
    parser._skip_newlines()
    expr = parser._expression()
    parser._skip_newlines()
    token = parser._peek()
    if token.type is not TokenType.EOF:
        raise ExlSyntaxError(
            f"unexpected trailing input {token.value!r}", token.line, token.column
        )
    return expr
