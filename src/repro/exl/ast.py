"""Abstract syntax tree for EXL programs.

A program is a sequence of statements ``C := expr`` (Section 3).
Expressions are cube literals, numeric/string literals, arithmetic
combinations, and operator calls — possibly with a ``group by`` clause
for aggregations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "Expr",
    "Number",
    "String",
    "CubeRef",
    "UnaryOp",
    "BinOp",
    "GroupItem",
    "Call",
    "Statement",
    "ProgramAst",
]


class Expr:
    """Base class of EXL expression nodes."""

    def children(self) -> Tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Number(Expr):
    """A numeric literal (scalar parameter or constant operand)."""

    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class String(Expr):
    """A string literal (only valid as an operator parameter)."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class CubeRef(Expr):
    """A cube literal: a reference to an elementary or derived cube."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary minus."""

    op: str
    operand: Expr

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.op}{_paren(self.operand)}"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic: ``+ - * / ^`` over cubes and/or scalars."""

    op: str
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_paren(self.left)} {self.op} {_paren(self.right)}"


def _paren(expr: Expr) -> str:
    if isinstance(expr, (BinOp, UnaryOp)):
        return f"({expr})"
    return str(expr)


@dataclass(frozen=True)
class GroupItem:
    """One item of a ``group by`` list: a dimension, or a scalar function
    of a dimension (e.g. ``quarter(d) as q``), optionally renamed.
    """

    dim: str
    func: Optional[str] = None
    alias: Optional[str] = None

    @property
    def result_name(self) -> str:
        """Name of the dimension this item produces in the result cube."""
        if self.alias:
            return self.alias
        if self.func:
            return self.func
        return self.dim

    def __str__(self) -> str:
        base = f"{self.func}({self.dim})" if self.func else self.dim
        if self.alias:
            return f"{base} as {self.alias}"
        return base


@dataclass(frozen=True)
class Call(Expr):
    """An operator call in function notation, e.g. ``shift(C, 1)`` or
    ``avg(PDR, group by quarter(d) as q, r)``.
    """

    name: str
    args: Tuple[Expr, ...]
    group_by: Tuple[GroupItem, ...] = ()

    def __init__(self, name: str, args, group_by=()):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "group_by", tuple(group_by))

    def children(self):
        return self.args

    def __str__(self) -> str:
        parts = [str(a) for a in self.args]
        if self.group_by:
            parts.append("group by " + ", ".join(str(g) for g in self.group_by))
        return f"{self.name}({', '.join(parts)})"


@dataclass(frozen=True)
class Statement:
    """One EXL assignment ``target := expr``."""

    target: str
    expr: Expr
    line: int = 0

    def __str__(self) -> str:
        return f"{self.target} := {self.expr}"


@dataclass(frozen=True)
class ProgramAst:
    """An ordered sequence of statements."""

    statements: Tuple[Statement, ...]

    def __init__(self, statements):
        object.__setattr__(self, "statements", tuple(statements))

    def __iter__(self):
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.statements)


def walk(expr: Expr):
    """Yield ``expr`` and all its descendants, depth first."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def cube_refs(expr: Expr) -> List[str]:
    """Names of all cubes referenced in the expression, in order, deduplicated."""
    seen = []
    for node in walk(expr):
        if isinstance(node, CubeRef) and node.name not in seen:
            seen.append(node.name)
    return seen
