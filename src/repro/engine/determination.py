"""The determination engine (Section 6).

Decides *what* must be calculated: it maintains the global dependency
DAG over all catalogued cubes (node = cube, edge A → C when C is
calculated from A), detects the cubes affected by changes to elementary
data, produces a topologically sorted list of the cubes to recompute,
and partitions that list into contiguous subgraphs, each delegated to a
single target system chosen from technical metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import EngineError
from ..exl.ast import cube_refs
from ..exl.operators import OperatorRegistry, default_registry
from ..exl.parser import parse_program
from ..model.catalog import MetadataCatalog

__all__ = ["Subgraph", "DependencyGraph", "choose_target", "DEFAULT_TARGET_PRIORITY"]

DEFAULT_TARGET_PRIORITY: Tuple[str, ...] = ("sql", "r", "matlab", "etl")


@dataclass(frozen=True)
class Subgraph:
    """A contiguous run of derived cubes delegated to one target system."""

    cubes: Tuple[str, ...]
    target: str

    def __init__(self, cubes: Sequence[str], target: str):
        object.__setattr__(self, "cubes", tuple(cubes))
        object.__setattr__(self, "target", target)


class DependencyGraph:
    """The cube dependency DAG of a metadata catalog."""

    def __init__(self, catalog: MetadataCatalog, registry: Optional[OperatorRegistry] = None):
        self.catalog = catalog
        self.registry = registry or default_registry()
        #: cube -> cubes it is calculated from
        self.operands: Dict[str, List[str]] = {}
        #: cube -> cubes calculated from it
        self.consumers: Dict[str, List[str]] = {}
        #: cube -> operator names its statement uses
        self.operators: Dict[str, List[str]] = {}
        self._build()

    def _build(self) -> None:
        for name in self.catalog.names():
            self.consumers.setdefault(name, [])
        for name in self.catalog.derived_names:
            entry = self.catalog.entry(name)
            if not entry.statement_text:
                raise EngineError(f"derived cube {name} has no statement text")
            ast = parse_program(entry.statement_text)
            if len(ast) != 1 or ast.statements[0].target != name:
                raise EngineError(
                    f"catalog entry for {name} must hold exactly one statement "
                    f"defining it"
                )
            statement = ast.statements[0]
            refs = cube_refs(statement.expr)
            for ref in refs:
                if ref not in self.catalog:
                    raise EngineError(
                        f"statement for {name} references undeclared cube {ref!r}"
                    )
            self.operands[name] = refs
            for ref in refs:
                self.consumers.setdefault(ref, []).append(name)
            self.operators[name] = _operator_names(statement.expr)
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        self.topological_order()  # raises on cycles

    # -- queries --------------------------------------------------------
    def topological_order(self, subset: Optional[Set[str]] = None) -> List[str]:
        """Derived cubes in dependency order (operands first).

        With ``subset``, only those cubes are ordered (their mutual
        dependencies still respected).
        """
        wanted = set(self.catalog.derived_names if subset is None else subset)
        indegree: Dict[str, int] = {}
        for name in wanted:
            indegree[name] = sum(
                1 for op in self.operands.get(name, []) if op in wanted
            )
        # deterministic order: catalog declaration order breaks ties
        declaration_rank = {n: i for i, n in enumerate(self.catalog.names())}
        ready = sorted(
            (n for n, d in indegree.items() if d == 0),
            key=lambda n: declaration_rank.get(n, 0),
        )
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            newly_ready = []
            for consumer in self.consumers.get(name, []):
                if consumer in indegree and consumer not in order:
                    indegree[consumer] -= 1
                    if indegree[consumer] == 0:
                        newly_ready.append(consumer)
            ready.extend(sorted(newly_ready, key=lambda n: declaration_rank.get(n, 0)))
            ready.sort(key=lambda n: declaration_rank.get(n, 0))
        if len(order) != len(wanted):
            raise EngineError("cube dependency graph contains a cycle")
        return order

    def affected_by(self, changed: Iterable[str]) -> List[str]:
        """Derived cubes downstream of the changed cubes, topologically
        sorted — the determination engine's DFS of Section 6."""
        frontier = list(changed)
        affected: Set[str] = set()
        while frontier:
            name = frontier.pop()
            for consumer in self.consumers.get(name, []):
                if consumer not in affected:
                    affected.add(consumer)
                    frontier.append(consumer)
        return self.topological_order(affected) if affected else []

    # -- partitioning -------------------------------------------------------
    def target_of(
        self, cube: str, priority: Sequence[str] = DEFAULT_TARGET_PRIORITY
    ) -> str:
        """The target system chosen for one derived cube."""
        entry = self.catalog.entry(cube)
        supported = self.supported_targets(cube)
        if entry.preferred_target:
            if entry.preferred_target not in supported:
                raise EngineError(
                    f"cube {cube}: preferred target {entry.preferred_target!r} "
                    f"does not support its operators (supported: {sorted(supported)})"
                )
            return entry.preferred_target
        for candidate in priority:
            if candidate in supported:
                return candidate
        raise EngineError(
            f"cube {cube}: no target in {priority} supports operators "
            f"{self.operators[cube]}"
        )

    def supported_targets(self, cube: str) -> Set[str]:
        """Targets that natively support every operator of the cube.

        The script-interpreting backends execute the same generated
        code as their IR twins, so ``rscript`` inherits ``r``'s support
        and ``mscript`` inherits ``matlab``'s.
        """
        supported: Optional[Set[str]] = None
        for op_name in self.operators.get(cube, []):
            targets = set(self.registry.get(op_name).targets)
            supported = targets if supported is None else supported & targets
        if supported is None:  # pure arithmetic / copy: everywhere
            supported = {"sql", "r", "matlab", "etl", "chase"}
        if "r" in supported:
            supported = supported | {"rscript"}
        if "matlab" in supported:
            supported = supported | {"mscript"}
        return supported

    def partition(
        self,
        order: Sequence[str],
        priority: Sequence[str] = DEFAULT_TARGET_PRIORITY,
    ) -> List[Subgraph]:
        """Greedy contiguous partitioning of a topo order by target."""
        subgraphs: List[Subgraph] = []
        current: List[str] = []
        current_target: Optional[str] = None
        for cube in order:
            target = self.target_of(cube, priority)
            if target != current_target and current:
                subgraphs.append(Subgraph(current, current_target))
                current = []
            current_target = target
            current.append(cube)
        if current:
            subgraphs.append(Subgraph(current, current_target))
        return subgraphs


def choose_target(
    graph: DependencyGraph,
    cube: str,
    priority: Sequence[str] = DEFAULT_TARGET_PRIORITY,
) -> str:
    """Convenience wrapper around :meth:`DependencyGraph.target_of`."""
    return graph.target_of(cube, priority)


def _operator_names(expr) -> List[str]:
    from ..exl.ast import Call, walk

    names: List[str] = []
    for node in walk(expr):
        if isinstance(node, Call):
            if node.name not in names:
                names.append(node.name)
            for item in node.group_by:
                if item.func and item.func not in names:
                    names.append(item.func)
    return names
