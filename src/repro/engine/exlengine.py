"""EXLEngine: the metadata-driven facade (Section 6, Figure 2).

Usage::

    engine = EXLEngine()
    engine.declare_elementary(pdr_schema)
    engine.declare_elementary(rgdppc_schema)
    engine.add_program(GDP_PROGRAM)          # declares the derived cubes
    engine.load(pdr_cube)
    engine.load(rgdppc_cube)
    record = engine.run()                    # determination -> translation -> dispatch
    pchng = engine.data("PCHNG")

Subsequent ``engine.load`` of new elementary data followed by
``engine.run()`` recomputes only the affected part of the DAG.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from ..backends import Backend, ChaseBackend, all_backends
from ..chase.scheduler import ChaseCache
from ..errors import EngineError
from ..exl.operators import OperatorRegistry, default_registry
from ..model.catalog import MetadataCatalog
from ..model.cube import Cube, CubeSchema
from ..obs import NULL_TRACER, MetricsRegistry
from .costmodel import CostModel
from .determination import DEFAULT_TARGET_PRIORITY, DependencyGraph, Subgraph
from .dispatcher import ON_ERROR_MODES, Dispatcher
from .faults import FaultPlan
from .history import RunLog, RunRecord
from .translation import TranslationEngine

__all__ = ["EXLEngine"]


class EXLEngine:
    """The engineered system: catalog + determination + translation +
    dispatch + historicity."""

    def __init__(
        self,
        registry: Optional[OperatorRegistry] = None,
        backends: Optional[Dict[str, Backend]] = None,
        target_priority: Sequence[str] = DEFAULT_TARGET_PRIORITY,
        parallel: bool = False,
        jobs: int = 4,
        shards: int = 1,
        chase_cache: bool = True,
        vectorize: Optional[bool] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        retries: Optional[int] = None,
        deadline_s: Optional[float] = None,
        on_error: Optional[str] = None,
        backoff_s: Optional[float] = None,
        fallback: Optional[Dict[str, Sequence[str]]] = None,
        fault_plan: Optional[FaultPlan] = None,
        journal=None,
        adaptive: bool = False,
        cost_model: Optional[CostModel] = None,
    ):
        self.registry = registry or default_registry()
        self.backends = backends or all_backends()
        self.target_priority = tuple(target_priority)
        self.parallel = parallel
        # -- failure policy defaults, overridable per run()/resume();
        # None lets the dispatcher resolve chaos-mode / built-in defaults
        if on_error is not None and on_error not in ON_ERROR_MODES:
            raise EngineError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        self.retries = retries
        self.deadline_s = deadline_s
        self.on_error = on_error
        self.backoff_s = backoff_s
        self.fallback = fallback
        self.fault_plan = fault_plan
        #: optional :class:`repro.engine.journal.RunJournal`; when set,
        #: every dispatch write-ahead-logs its plan and commits so
        #: :meth:`recover` can roll a hard crash forward (the CLI wires
        #: this for every ``exl run``/``update``/``resume``)
        self.journal = journal
        #: worker threads for parallel waves (dispatcher and chase scheduler)
        self.jobs = max(1, int(jobs))
        #: worker processes for sharded chase runs (0 = one per core,
        #: 1 = sharding off); see repro.chase.shard
        self.shards = max(0, int(shards))
        #: columnar chase kernels on/off (None = engine default, i.e. on)
        self.vectorize = vectorize
        #: span sink shared by the engine, dispatcher, and chase layers
        #: (the no-op tracer unless the caller wants a trace)
        self.tracer = NULL_TRACER if tracer is None else tracer
        #: accumulating counters/histograms across this engine's runs
        self.metrics = MetricsRegistry() if metrics is None else metrics
        #: cost-model-driven per-subgraph target choice.  ``adaptive``
        #: is the engine default, overridable per run()/update(); the
        #: model itself always learns from every dispatch once present
        #: (an in-memory one is created when adaptive is requested
        #: without an explicit model).  A model built with a ``path``
        #: loads its persisted history here — a damaged file is a
        #: counted cold start, never an error — and is re-saved after
        #: every dispatch.
        self.adaptive = bool(adaptive)
        if cost_model is None and self.adaptive:
            cost_model = CostModel()
        if cost_model is not None:
            if cost_model.metrics is None:
                cost_model.metrics = self.metrics
            cost_model.load()
        self.cost_model = cost_model
        #: cube-level chase materialization cache, shared across runs so
        #: incremental updates skip unchanged strata (None = disabled)
        self.chase_cache: Optional[ChaseCache] = (
            ChaseCache(metrics=self.metrics) if chase_cache else None
        )
        chase_backend = self.backends.get("chase")
        if isinstance(chase_backend, ChaseBackend):
            chase_backend.parallel = parallel
            chase_backend.max_workers = self.jobs
            chase_backend.shards = self.shards
            chase_backend.cache = self.chase_cache
            chase_backend.vectorized = vectorize
            chase_backend.tracer = self.tracer
            chase_backend.metrics = self.metrics
            # keep per-mapping solution snapshots (references only) so
            # update() can propagate tuple-level deltas instead of
            # re-running unchanged strata
            chase_backend.capture_deltas = True
        self.catalog = MetadataCatalog()
        self.runs = RunLog()
        #: the OLAP query service; None until enable_olap() is called
        self.olap = None
        self._graph: Optional[DependencyGraph] = None
        self._translator: Optional[TranslationEngine] = None
        self._loaded_since_last_run: List[str] = []

    # -- metadata definition ------------------------------------------------
    def declare_elementary(
        self, schema: CubeSchema, preferred_target: Optional[str] = None
    ) -> None:
        """Register an elementary cube (base data fed from outside)."""
        self.catalog.declare_elementary(schema, preferred_target)
        self._invalidate()

    def add_program(
        self,
        source: str,
        preferred_targets: Optional[Dict[str, str]] = None,
    ) -> List[str]:
        """Register an EXL program: each statement declares a derived cube.

        The program is validated against the current catalog; inferred
        schemas are recorded.  ``preferred_targets`` optionally pins
        specific cubes to specific target systems (technical metadata).

        Returns the names of the derived cubes added.
        """
        from ..exl.program import Program

        preferred_targets = preferred_targets or {}
        base = self.catalog.as_schema()
        program = Program.compile(source, base, self.registry)
        added = []
        for validated in program.statements:
            statement_text = str(validated.ast)
            self.catalog.declare_derived(
                validated.schema,
                statement_text,
                preferred_targets.get(validated.target),
            )
            added.append(validated.target)
        self._invalidate()
        return added

    # -- data ----------------------------------------------------------------
    def load(self, cube: Cube) -> int:
        """Feed elementary data; marks the cube changed for the next run."""
        if not self.catalog.is_elementary(cube.schema.name):
            raise EngineError(
                f"only elementary cubes can be loaded, {cube.schema.name} is "
                f"derived"
            )
        version = self.catalog.load(cube)
        self._loaded_since_last_run.append(cube.schema.name)
        return version

    def data(self, name: str, version: Optional[int] = None) -> Cube:
        """Read a cube (latest or a historical version)."""
        return self.catalog.data(name, version)

    # -- OLAP --------------------------------------------------------------
    def enable_olap(
        self,
        cubes: Optional[Iterable[str]] = None,
        aggregate="sum",
    ):
        """Turn on the OLAP query layer (:mod:`repro.olap`).

        Builds and then eagerly maintains a roll-up lattice per
        queryable cube: after every committed run the engine refreshes
        the lattices of the cubes that run wrote, re-reducing only
        dirty groups, so slice/dice/roll-up queries — and ``as_of``
        queries pinned at any past run — answer from memory.

        Args:
            cubes: restrict the queryable set (default: every cube
                with data).
            aggregate: measure aggregate for the lattices — a name
                from the aggregate registry, or a callable (which
                disables incremental refresh).
        """
        from ..olap import OlapService

        self.olap = OlapService(
            self.catalog,
            runs=self.runs,
            aggregate=aggregate,
            metrics=self.metrics,
            cubes=cubes,
        )
        return self.olap

    # -- lazy internals -----------------------------------------------------------
    def _invalidate(self) -> None:
        self._graph = None
        self._translator = None

    @property
    def graph(self) -> DependencyGraph:
        if self._graph is None:
            self._graph = DependencyGraph(self.catalog, self.registry)
        return self._graph

    @property
    def translator(self) -> TranslationEngine:
        if self._translator is None:
            self._translator = TranslationEngine(
                self.catalog, self.graph, self.registry, self.backends
            )
        return self._translator

    # -- running ---------------------------------------------------------------------
    def run(
        self,
        changed: Optional[Iterable[str]] = None,
        as_of: Optional[int] = None,
        retries: Optional[int] = None,
        deadline_s: Optional[float] = None,
        on_error: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        adaptive: Optional[bool] = None,
    ) -> RunRecord:
        """One determination → translation → dispatch cycle.

        Args:
            changed: elementary cubes whose data changed; defaults to
                everything loaded since the previous run (or all
                elementary cubes with data on the first run).
            as_of: replay a *vintage*: elementary inputs are read at
                this historical version (derived intermediates are
                recomputed, not read historically).  Results are stored
                as new versions, so the replay itself is versioned.
            retries / deadline_s / on_error / fault_plan: per-run
                overrides of the engine's failure policy (see
                :class:`~repro.engine.dispatcher.Dispatcher`).  Under
                ``on_error="continue"`` or ``"degrade"`` the run
                finishes even when subgraphs fail; the returned record
                then carries a partial-failure ``error`` and per-
                subgraph outcomes, and :meth:`resume` can finish it.
            adaptive: per-run override of cost-model-driven target
                choice (None = engine default).  Each subgraph record
                carries the decision (``chosen_target``,
                ``predicted_s``, ``observed_s``).
        """
        if changed is None:
            changed = self._loaded_since_last_run or [
                n for n in self.catalog.elementary_names if self.catalog.has_data(n)
            ]
        changed = list(dict.fromkeys(changed))
        if not changed:
            raise EngineError("nothing to run: no elementary data has changed")

        with self.tracer.span(
            "run", category="engine", trigger=list(changed)
        ) as run_span:
            t0 = time.perf_counter()
            with self.tracer.span("determination", category="engine"):
                affected = self.graph.affected_by(changed)
                subgraphs = self.graph.partition(affected, self.target_priority)
            determination_s = time.perf_counter() - t0

            t1 = time.perf_counter()
            with self.tracer.span("translation", category="engine"):
                translated = self.translator.translate_all(subgraphs)
            translation_s = time.perf_counter() - t1

            record = self.runs.open(changed, affected)
            run_span.note(run_id=record.run_id)
            record.determination_s = determination_s
            record.translation_s = translation_s
            self.metrics.inc("engine.runs")
            self.metrics.observe("engine.determination_s", determination_s)
            self.metrics.observe("engine.translation_s", translation_s)
            self._dispatch(
                translated,
                record,
                as_of=as_of,
                retries=self.retries if retries is None else retries,
                deadline_s=self.deadline_s if deadline_s is None else deadline_s,
                on_error=self.on_error if on_error is None else on_error,
                fault_plan=self.fault_plan if fault_plan is None else fault_plan,
                adaptive=self.adaptive if adaptive is None else adaptive,
            )
        self._loaded_since_last_run = []
        return record

    def update(
        self,
        changed: Optional[Iterable[str]] = None,
        against: Optional[int] = None,
        retries: Optional[int] = None,
        deadline_s: Optional[float] = None,
        on_error: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        adaptive: Optional[bool] = None,
    ) -> RunRecord:
        """Incremental run: recompute only what changed since a baseline.

        Picks a baseline run (``against``, or the most recent finished
        run), determines which elementary cubes are *dirty* — their
        stored version moved past the baseline's **and** their content
        actually differs (a reload of identical data stays clean) — and
        dispatches only the affected subgraphs in delta mode: the chase
        backend propagates tuple-level deltas from its solution
        snapshots, unchanged outputs keep their stored versions, and
        subgraphs whose inputs all stayed clean are skipped with
        outcome ``clean``.  The final store state is tuple-for-tuple
        identical to a full :meth:`run` on the same data.

        Args:
            changed: elementary cubes to treat as dirty, bypassing the
                version/content check (an actually-unchanged name is
                harmless: its delta is empty and everything downstream
                comes out clean).  Defaults to auto-detection against
                the baseline.
            against: run id of the baseline; defaults to the last
                finished run.  Without any usable baseline, update()
                degrades to a full :meth:`run`.
        """
        if against is not None:
            baseline = self.runs.get(against)
            if baseline is None:
                raise EngineError(f"unknown run id {against}")
            if not baseline.baseline_versions:
                raise EngineError(
                    f"run {against} recorded no baseline versions to "
                    f"update against"
                )
        else:
            candidates = [
                r for r in self.runs.runs
                if r.finished and r.baseline_versions
            ]
            baseline = candidates[-1] if candidates else None
            if baseline is None:
                return self.run(
                    changed=changed, retries=retries, deadline_s=deadline_s,
                    on_error=on_error, fault_plan=fault_plan,
                    adaptive=adaptive,
                )
        if changed is not None:
            dirty = list(dict.fromkeys(changed))
        else:
            dirty = []
            for name in self.catalog.elementary_names:
                if not self.catalog.has_data(name):
                    continue
                base_version = baseline.baseline_versions.get(name)
                if base_version == self.catalog.store.latest_version(name):
                    continue
                if base_version is not None:
                    previous = self.catalog.data(name, base_version)
                    if previous.delta(self.catalog.data(name)).is_empty:
                        continue
                dirty.append(name)

        with self.tracer.span(
            "update", category="engine", trigger=list(dirty),
            baseline=baseline.run_id,
        ) as run_span:
            t0 = time.perf_counter()
            with self.tracer.span("determination", category="engine"):
                affected = self.graph.affected_by(dirty) if dirty else []
                subgraphs = (
                    self.graph.partition(affected, self.target_priority)
                    if affected
                    else []
                )
            determination_s = time.perf_counter() - t0
            t1 = time.perf_counter()
            with self.tracer.span("translation", category="engine"):
                translated = self.translator.translate_all(subgraphs)
            translation_s = time.perf_counter() - t1
            record = self.runs.open(dirty, affected)
            record.delta_of = baseline.run_id
            run_span.note(run_id=record.run_id)
            record.determination_s = determination_s
            record.translation_s = translation_s
            self.metrics.inc("engine.updates")
            if self.chase_cache is not None and dirty:
                # cache entries keyed over stale operand content can
                # never hit again; drop them so the counters (and the
                # cache's memory) reflect reality
                self.chase_cache.invalidate_relations(
                    set(dirty) | set(affected)
                )
            self._dispatch(
                translated,
                record,
                retries=self.retries if retries is None else retries,
                deadline_s=self.deadline_s if deadline_s is None else deadline_s,
                on_error=self.on_error if on_error is None else on_error,
                fault_plan=self.fault_plan if fault_plan is None else fault_plan,
                delta=True,
                dirty=dirty,
                adaptive=self.adaptive if adaptive is None else adaptive,
            )
        self._loaded_since_last_run = []
        return record

    def resume(
        self,
        run_id: Optional[int] = None,
        retries: Optional[int] = None,
        deadline_s: Optional[float] = None,
        on_error: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> RunRecord:
        """Finish a partially-failed run: re-dispatch only its
        failed/skipped subgraphs.

        Cubes the original run committed are *not* recomputed — the
        resumed subgraphs read them straight from the versioned store.
        Defaults to the most recent resumable run; the engine's
        ``fault_plan`` is deliberately **not** inherited (resume exists
        to recover from faults), pass one explicitly to keep injecting.

        Returns the new run's record (``resumed_from`` links back).
        """
        if run_id is None:
            resumable = self.runs.failed()
            if not resumable:
                raise EngineError("no failed or partial runs to resume")
            source = resumable[-1]
        else:
            source = self.runs.get(run_id)
            if source is None:
                raise EngineError(f"unknown run id {run_id}")
        todo = source.unfinished_subgraphs()
        if not todo:
            raise EngineError(f"run {source.run_id} left nothing to resume")
        subgraphs = [Subgraph(s.cubes, s.target) for s in todo]
        with self.tracer.span(
            "resume", category="engine", source_run=source.run_id
        ) as run_span:
            t1 = time.perf_counter()
            with self.tracer.span("translation", category="engine"):
                translated = self.translator.translate_all(subgraphs)
            translation_s = time.perf_counter() - t1
            record = self.runs.open(
                (f"resume:{source.run_id}",),
                [cube for s in todo for cube in s.cubes],
            )
            record.resumed_from = source.run_id
            record.translation_s = translation_s
            run_span.note(run_id=record.run_id)
            self.metrics.inc("engine.resumes")
            self._dispatch(
                translated,
                record,
                retries=self.retries if retries is None else retries,
                deadline_s=self.deadline_s if deadline_s is None else deadline_s,
                on_error=self.on_error if on_error is None else on_error,
                fault_plan=fault_plan,
            )
        return record

    def _dispatch(
        self,
        translated,
        record: RunRecord,
        as_of: Optional[int] = None,
        retries: Optional[int] = None,
        deadline_s: Optional[float] = None,
        on_error: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        delta: bool = False,
        dirty: Optional[Iterable[str]] = None,
        adaptive: bool = False,
    ) -> RunRecord:
        """Dispatch + record bookkeeping shared by run/resume/update."""
        cost_model = self.cost_model
        if adaptive and cost_model is None:
            # adaptive requested per-run on an engine built without a
            # model: learn in-memory for the life of this engine
            cost_model = self.cost_model = CostModel(metrics=self.metrics)
        record.adaptive = bool(adaptive)
        chase_backend = self.backends.get("chase")
        count_kernels = isinstance(chase_backend, ChaseBackend)
        if count_kernels:
            kernels_before = (
                chase_backend.vectorized_tgds,
                chase_backend.fallback_tgds,
            )
            shards_before = (
                chase_backend.shard_runs,
                list(chase_backend.shard_tuples),
                chase_backend.shard_merge_s,
            )
        encode_before = self.metrics.value("chase.kernel.encode")
        dispatcher = Dispatcher(
            self.catalog,
            self.graph,
            self.parallel,
            max_workers=self.jobs,
            as_of=as_of,
            tracer=self.tracer,
            metrics=self.metrics,
            retries=retries,
            deadline_s=deadline_s,
            on_error=on_error,
            backoff_s=self.backoff_s,
            fallback=self.fallback,
            fault_plan=fault_plan,
            retranslate=self.translator.for_target,
            delta=delta,
            dirty=dirty,
            journal=self.journal,
            cost_model=cost_model,
            adaptive=adaptive,
        )
        if self.journal is not None:
            # write-ahead: the full plan is durable before any subgraph
            # runs, so recovery knows exactly what a crash interrupted
            self.journal.run_start(record, translated)
        t2 = time.perf_counter()
        try:
            with self.tracer.span("dispatch", category="engine"):
                dispatcher.dispatch(translated, record)
        except Exception as exc:
            # close the record in its failure state so duration and
            # history stay meaningful, then let the error propagate
            record.error = f"{type(exc).__name__}: {exc}"
            self.metrics.inc("engine.runs.failed")
            self._record_baselines(record)
            self.runs.close(record)
            if cost_model is not None:
                # whatever this run managed to measure is still signal
                cost_model.save()
            if self.journal is not None:
                self.journal.run_end(record.run_id, record.error)
            raise
        self.metrics.observe("engine.dispatch_s", time.perf_counter() - t2)
        if delta:
            record.delta_dirty_tgds = dispatcher.delta_dirty_tgds
            record.delta_clean_tgds = dispatcher.delta_clean_tgds
            record.delta_fallback_tgds = dispatcher.delta_fallback_tgds
        if count_kernels:
            record.vectorized_tgds = (
                chase_backend.vectorized_tgds - kernels_before[0]
            )
            record.fallback_tgds = (
                chase_backend.fallback_tgds - kernels_before[1]
            )
            if chase_backend.shard_runs > shards_before[0]:
                before_tuples = shards_before[1]
                record.shard_tuples = [
                    count - (before_tuples[i] if i < len(before_tuples) else 0)
                    for i, count in enumerate(chase_backend.shard_tuples)
                ]
                record.shards = len(record.shard_tuples)
                record.shard_merge_s = (
                    chase_backend.shard_merge_s - shards_before[2]
                )
        record.encode_count = (
            self.metrics.value("chase.kernel.encode") - encode_before
        )
        if any(not s.committed for s in record.subgraphs):
            counts = record.outcomes()
            record.error = (
                f"partial failure: {counts.get('failed', 0)} subgraph(s) "
                f"failed, {counts.get('skipped', 0)} skipped"
            )
            self.metrics.inc("engine.runs.partial")
        self._record_baselines(record)
        self.runs.close(record)
        if cost_model is not None:
            cost_model.save()
        if self.olap is not None:
            with self.tracer.span("olap-refresh", category="engine"):
                self.olap.on_commit(record, dispatcher.committed_versions)
        if self.journal is not None:
            self.journal.run_end(record.run_id, record.error)
        return record

    @staticmethod
    def recover(out_dir):
        """Replay ``out_dir``'s write-ahead journal after a hard crash.

        Returns a :class:`repro.engine.journal.RecoveryReport`; see
        :func:`repro.engine.journal.recover` for the algorithm.  The
        report's ``status`` says whether the directory was already
        consistent, fully persisted, or left a synthesized
        ``run-state.json`` for :meth:`resume` / ``exl resume``.
        """
        from .journal import recover as _recover

        return _recover(out_dir)

    def _record_baselines(self, record: RunRecord) -> None:
        """Pin the store versions this run left behind, so a later
        ``update`` can diff current data against them to find dirt."""
        store = self.catalog.store
        record.baseline_versions = {
            name: store.latest_version(name)
            for name in store.names()
            if self.catalog.has_data(name)
        }

    # -- inspection ---------------------------------------------------------------
    def plan(self, changed: Optional[Iterable[str]] = None) -> List[Subgraph]:
        """The subgraphs a run would dispatch, without executing them."""
        if changed is None:
            changed = [
                n for n in self.catalog.elementary_names if self.catalog.has_data(n)
            ]
        affected = self.graph.affected_by(changed)
        return self.graph.partition(affected, self.target_priority)

    def scripts(self, changed: Optional[Iterable[str]] = None) -> Dict[str, str]:
        """Generated target scripts per subgraph (keyed by 'target:cubes')."""
        out = {}
        for subgraph in self.plan(changed):
            translated = self.translator.translate(subgraph)
            key = f"{subgraph.target}:{'+'.join(subgraph.cubes)}"
            out[key] = translated.script
        return out
