"""EXLEngine: the metadata-driven facade (Section 6, Figure 2).

Usage::

    engine = EXLEngine()
    engine.declare_elementary(pdr_schema)
    engine.declare_elementary(rgdppc_schema)
    engine.add_program(GDP_PROGRAM)          # declares the derived cubes
    engine.load(pdr_cube)
    engine.load(rgdppc_cube)
    record = engine.run()                    # determination -> translation -> dispatch
    pchng = engine.data("PCHNG")

Subsequent ``engine.load`` of new elementary data followed by
``engine.run()`` recomputes only the affected part of the DAG.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from ..backends import Backend, ChaseBackend, all_backends
from ..chase.scheduler import ChaseCache
from ..errors import EngineError
from ..exl.operators import OperatorRegistry, default_registry
from ..model.catalog import MetadataCatalog
from ..model.cube import Cube, CubeSchema
from ..obs import NULL_TRACER, MetricsRegistry
from .determination import DEFAULT_TARGET_PRIORITY, DependencyGraph, Subgraph
from .dispatcher import Dispatcher
from .history import RunLog, RunRecord
from .translation import TranslationEngine

__all__ = ["EXLEngine"]


class EXLEngine:
    """The engineered system: catalog + determination + translation +
    dispatch + historicity."""

    def __init__(
        self,
        registry: Optional[OperatorRegistry] = None,
        backends: Optional[Dict[str, Backend]] = None,
        target_priority: Sequence[str] = DEFAULT_TARGET_PRIORITY,
        parallel: bool = False,
        jobs: int = 4,
        chase_cache: bool = True,
        vectorize: Optional[bool] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.registry = registry or default_registry()
        self.backends = backends or all_backends()
        self.target_priority = tuple(target_priority)
        self.parallel = parallel
        #: worker threads for parallel waves (dispatcher and chase scheduler)
        self.jobs = max(1, int(jobs))
        #: columnar chase kernels on/off (None = engine default, i.e. on)
        self.vectorize = vectorize
        #: span sink shared by the engine, dispatcher, and chase layers
        #: (the no-op tracer unless the caller wants a trace)
        self.tracer = NULL_TRACER if tracer is None else tracer
        #: accumulating counters/histograms across this engine's runs
        self.metrics = MetricsRegistry() if metrics is None else metrics
        #: cube-level chase materialization cache, shared across runs so
        #: incremental updates skip unchanged strata (None = disabled)
        self.chase_cache: Optional[ChaseCache] = (
            ChaseCache(metrics=self.metrics) if chase_cache else None
        )
        chase_backend = self.backends.get("chase")
        if isinstance(chase_backend, ChaseBackend):
            chase_backend.parallel = parallel
            chase_backend.max_workers = self.jobs
            chase_backend.cache = self.chase_cache
            chase_backend.vectorized = vectorize
            chase_backend.tracer = self.tracer
            chase_backend.metrics = self.metrics
        self.catalog = MetadataCatalog()
        self.runs = RunLog()
        self._graph: Optional[DependencyGraph] = None
        self._translator: Optional[TranslationEngine] = None
        self._loaded_since_last_run: List[str] = []

    # -- metadata definition ------------------------------------------------
    def declare_elementary(
        self, schema: CubeSchema, preferred_target: Optional[str] = None
    ) -> None:
        """Register an elementary cube (base data fed from outside)."""
        self.catalog.declare_elementary(schema, preferred_target)
        self._invalidate()

    def add_program(
        self,
        source: str,
        preferred_targets: Optional[Dict[str, str]] = None,
    ) -> List[str]:
        """Register an EXL program: each statement declares a derived cube.

        The program is validated against the current catalog; inferred
        schemas are recorded.  ``preferred_targets`` optionally pins
        specific cubes to specific target systems (technical metadata).

        Returns the names of the derived cubes added.
        """
        from ..exl.program import Program

        preferred_targets = preferred_targets or {}
        base = self.catalog.as_schema()
        program = Program.compile(source, base, self.registry)
        added = []
        for validated in program.statements:
            statement_text = str(validated.ast)
            self.catalog.declare_derived(
                validated.schema,
                statement_text,
                preferred_targets.get(validated.target),
            )
            added.append(validated.target)
        self._invalidate()
        return added

    # -- data ----------------------------------------------------------------
    def load(self, cube: Cube) -> int:
        """Feed elementary data; marks the cube changed for the next run."""
        if not self.catalog.is_elementary(cube.schema.name):
            raise EngineError(
                f"only elementary cubes can be loaded, {cube.schema.name} is "
                f"derived"
            )
        version = self.catalog.load(cube)
        self._loaded_since_last_run.append(cube.schema.name)
        return version

    def data(self, name: str, version: Optional[int] = None) -> Cube:
        """Read a cube (latest or a historical version)."""
        return self.catalog.data(name, version)

    # -- lazy internals -----------------------------------------------------------
    def _invalidate(self) -> None:
        self._graph = None
        self._translator = None

    @property
    def graph(self) -> DependencyGraph:
        if self._graph is None:
            self._graph = DependencyGraph(self.catalog, self.registry)
        return self._graph

    @property
    def translator(self) -> TranslationEngine:
        if self._translator is None:
            self._translator = TranslationEngine(
                self.catalog, self.graph, self.registry, self.backends
            )
        return self._translator

    # -- running ---------------------------------------------------------------------
    def run(
        self,
        changed: Optional[Iterable[str]] = None,
        as_of: Optional[int] = None,
    ) -> RunRecord:
        """One determination → translation → dispatch cycle.

        Args:
            changed: elementary cubes whose data changed; defaults to
                everything loaded since the previous run (or all
                elementary cubes with data on the first run).
            as_of: replay a *vintage*: elementary inputs are read at
                this historical version (derived intermediates are
                recomputed, not read historically).  Results are stored
                as new versions, so the replay itself is versioned.
        """
        if changed is None:
            changed = self._loaded_since_last_run or [
                n for n in self.catalog.elementary_names if self.catalog.has_data(n)
            ]
        changed = list(dict.fromkeys(changed))
        if not changed:
            raise EngineError("nothing to run: no elementary data has changed")

        with self.tracer.span(
            "run", category="engine", trigger=list(changed)
        ) as run_span:
            t0 = time.perf_counter()
            with self.tracer.span("determination", category="engine"):
                affected = self.graph.affected_by(changed)
                subgraphs = self.graph.partition(affected, self.target_priority)
            determination_s = time.perf_counter() - t0

            t1 = time.perf_counter()
            with self.tracer.span("translation", category="engine"):
                translated = self.translator.translate_all(subgraphs)
            translation_s = time.perf_counter() - t1

            record = self.runs.open(changed, affected)
            run_span.note(run_id=record.run_id)
            record.determination_s = determination_s
            record.translation_s = translation_s
            self.metrics.inc("engine.runs")
            self.metrics.observe("engine.determination_s", determination_s)
            self.metrics.observe("engine.translation_s", translation_s)
            chase_backend = self.backends.get("chase")
            count_kernels = isinstance(chase_backend, ChaseBackend)
            if count_kernels:
                kernels_before = (
                    chase_backend.vectorized_tgds,
                    chase_backend.fallback_tgds,
                )
            dispatcher = Dispatcher(
                self.catalog,
                self.graph,
                self.parallel,
                max_workers=self.jobs,
                as_of=as_of,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            t2 = time.perf_counter()
            try:
                with self.tracer.span("dispatch", category="engine"):
                    dispatcher.dispatch(translated, record)
            except Exception as exc:
                # close the record in its failure state so duration and
                # history stay meaningful, then let the error propagate
                record.error = f"{type(exc).__name__}: {exc}"
                self.metrics.inc("engine.runs.failed")
                self.runs.close(record)
                raise
            self.metrics.observe(
                "engine.dispatch_s", time.perf_counter() - t2
            )
            if count_kernels:
                record.vectorized_tgds = (
                    chase_backend.vectorized_tgds - kernels_before[0]
                )
                record.fallback_tgds = (
                    chase_backend.fallback_tgds - kernels_before[1]
                )
            self.runs.close(record)
        self._loaded_since_last_run = []
        return record

    # -- inspection ---------------------------------------------------------------
    def plan(self, changed: Optional[Iterable[str]] = None) -> List[Subgraph]:
        """The subgraphs a run would dispatch, without executing them."""
        if changed is None:
            changed = [
                n for n in self.catalog.elementary_names if self.catalog.has_data(n)
            ]
        affected = self.graph.affected_by(changed)
        return self.graph.partition(affected, self.target_priority)

    def scripts(self, changed: Optional[Iterable[str]] = None) -> Dict[str, str]:
        """Generated target scripts per subgraph (keyed by 'target:cubes')."""
        out = {}
        for subgraph in self.plan(changed):
            translated = self.translator.translate(subgraph)
            key = f"{subgraph.target}:{'+'.join(subgraph.cubes)}"
            out[key] = translated.script
        return out
