"""The translation engine (Section 6).

For each subgraph the determination engine produced, it assembles the
defining EXL statements into a program — cubes computed by *earlier*
subgraphs act as that program's elementary inputs — generates the
schema mapping, and compiles it for the subgraph's target backend.
Translations are cached, reflecting the paper's point that all of this
can be performed off-line, decoupled from calculation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..backends import Backend, CompiledTgd, all_backends
from ..errors import EngineError
from ..exl.operators import OperatorRegistry
from ..exl.program import Program
from ..mappings.generator import generate_mapping
from ..mappings.mapping import SchemaMapping
from ..model.catalog import MetadataCatalog
from ..model.schema import Schema
from .determination import DependencyGraph, Subgraph

__all__ = ["TranslatedSubgraph", "TranslationEngine"]


@dataclass
class TranslatedSubgraph:
    """Everything needed to execute one subgraph on its target."""

    subgraph: Subgraph
    program: Program
    mapping: SchemaMapping
    backend: Backend
    units: List[CompiledTgd]
    #: cubes this subgraph reads (computed earlier or elementary)
    inputs: Tuple[str, ...]

    @property
    def script(self) -> str:
        """The generated target-system script for the whole subgraph."""
        return "\n".join(u.text for u in self.units)


class TranslationEngine:
    """Compiles subgraphs to executable target form, with caching."""

    def __init__(
        self,
        catalog: MetadataCatalog,
        graph: DependencyGraph,
        registry: Optional[OperatorRegistry] = None,
        backends: Optional[Dict[str, Backend]] = None,
    ):
        self.catalog = catalog
        self.graph = graph
        self.registry = registry or graph.registry
        self.backends = backends or all_backends()
        self._cache: Dict[Tuple[Tuple[str, ...], str], TranslatedSubgraph] = {}

    def translate(self, subgraph: Subgraph) -> TranslatedSubgraph:
        """Translate one subgraph (cached on cubes + target)."""
        key = (subgraph.cubes, subgraph.target)
        if key in self._cache:
            return self._cache[key]
        translated = self._translate(subgraph)
        self._cache[key] = translated
        return translated

    def for_target(
        self, cubes: Sequence[str], target: str
    ) -> TranslatedSubgraph:
        """Translate the same cube run for a different target backend.

        This is the degradation path: when a subgraph's native backend
        fails permanently, the dispatcher re-translates it for each
        target in the fallback chain (normally the reference chase
        backend) and re-runs it there.  Cached like any translation, so
        repeated degradations of the same subgraph compile once.
        """
        return self.translate(Subgraph(tuple(cubes), target))

    def cache_size(self) -> int:
        return len(self._cache)

    def invalidate(self) -> None:
        self._cache.clear()

    def _translate(self, subgraph: Subgraph) -> TranslatedSubgraph:
        if subgraph.target not in self.backends:
            raise EngineError(f"no backend named {subgraph.target!r}")
        backend = self.backends[subgraph.target]
        inside = set(subgraph.cubes)
        inputs: List[str] = []
        for cube in subgraph.cubes:
            for operand in self.graph.operands.get(cube, []):
                if operand not in inside and operand not in inputs:
                    inputs.append(operand)
        # cubes from outside the subgraph act as this program's base data
        base = Schema(
            (self.catalog.schema_of(name) for name in inputs),
            f"inputs_{subgraph.target}",
        )
        source = "\n".join(
            self.catalog.entry(cube).statement_text for cube in subgraph.cubes
        )
        program = Program.compile(source, base, self.registry)
        mapping = generate_mapping(program)
        units = backend.compile_mapping(mapping)
        return TranslatedSubgraph(
            subgraph, program, mapping, backend, units, tuple(inputs)
        )

    def translate_all(self, subgraphs: Sequence[Subgraph]) -> List[TranslatedSubgraph]:
        return [self.translate(s) for s in subgraphs]
