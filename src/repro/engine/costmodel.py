"""Cost-based adaptive dispatch: learn where each subgraph runs fastest.

The paper's architecture translates every determined subgraph to a
*fixed* target engine chosen from technical metadata.  This module adds
the learning half of ROADMAP's "cost-based adaptive dispatch": a
:class:`CostModel` keeps an EWMA of *clean* per-attempt execution
timings per ``(target, subgraph signature)`` and, in adaptive mode, the
dispatcher asks it to *choose* the target per subgraph before
translation — columnar chase vs SQL vs the IR engines vs ETL, and (via
the signature's mode marker) delta-propagation vs full recompute.

Three design points keep the model honest:

* **Clean timings only.**  The model is fed the execution time of the
  *successful* attempt — never retry backoff sleep, never the wall time
  of failed attempts (see ``Dispatcher._attempt_with_retries``).  A
  healthy backend that hit one transient fault would otherwise look
  slow forever and the optimizer would systematically avoid it.
* **Transferable signatures.**  A signature is the subgraph's tgd-kind
  histogram × its operand cardinalities bucketed by log2 (plus a
  ``full``/``delta`` mode marker), not the cube names — so estimates
  learned on one run, program, or process transfer to structurally
  similar subgraphs in the next.
* **Cold-start fallback.**  With no history for the static target the
  model keeps the paper's static assignment (and thereby measures it);
  unmeasured alternatives are explored once each, deterministically,
  before the model starts exploiting the argmin estimate.

History persists as an atomic-write JSON document under
``<out>/costs/`` following the PR 9 durability conventions: the file is
written via :func:`repro.chase.atomic.atomic_write` and guarded by a
``payload_sha256`` over its own entries; a torn, tampered, or otherwise
unreadable history is a *counted* cold start
(``dispatch.cost.fallback.reason:history-unreadable``), never a crash.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "ADAPTIVE_TARGETS",
    "COST_HISTORY_FILE",
    "COST_HISTORY_FORMAT",
    "CostDecision",
    "CostModel",
    "card_bucket",
    "subgraph_signature",
]

#: on-disk format tag of the persisted history document
COST_HISTORY_FORMAT = 1

#: file name of the history document inside the ``<out>/costs/`` dir
COST_HISTORY_FILE = "cost-history.json"

#: targets the adaptive dispatcher considers.  The script twins
#: (``rscript``/``mscript``) execute the same generated code as their
#: IR counterparts, so measuring them separately would only split the
#: history; they stay reachable as static/preferred targets.
ADAPTIVE_TARGETS: Tuple[str, ...] = ("sql", "r", "matlab", "etl", "chase")


def card_bucket(cardinality: int) -> int:
    """log2 bucket of an operand cardinality (0 for an empty operand).

    ``bit_length`` gives ``floor(log2(n)) + 1`` — cheap, exact on ints,
    and stable across processes.  Bucketing means a 1 000-tuple and a
    1 400-tuple operand share estimates while a 100k-tuple one does not.
    """
    return max(0, int(cardinality)).bit_length()


def subgraph_signature(
    mapping,
    input_cards: Sequence[int],
    delta: bool = False,
) -> str:
    """The workload signature of one translated subgraph.

    Target-independent by construction (the schema mapping is generated
    before backend compilation), so every candidate target of a
    subgraph shares one signature and their timings are comparable.
    """
    kinds: Dict[str, int] = {}
    for tgd in mapping.target_tgds:
        key = tgd.kind.value
        kinds[key] = kinds.get(key, 0) + 1
    kind_part = ",".join(f"{k}x{n}" for k, n in sorted(kinds.items()))
    card_part = ",".join(
        str(b) for b in sorted(card_bucket(c) for c in input_cards)
    )
    mode = "delta" if delta else "full"
    return f"{mode}|{kind_part or '-'}|{card_part or '-'}"


@dataclass(frozen=True)
class CostDecision:
    """One adaptive target choice for a subgraph."""

    target: str
    #: the model's estimate for ``target`` (None while exploring an
    #: unmeasured candidate or falling back to the static assignment)
    predicted_s: Optional[float]
    #: ``hit`` — every candidate measured, exploit the argmin;
    #: ``exploration`` — an unmeasured candidate (or the still-unmeasured
    #: static target) was chosen to learn its cost
    kind: str


def _canonical_entries(entries: Dict[Tuple[str, str], Dict[str, float]]) -> List[Dict]:
    return [
        {
            "target": target,
            "signature": signature,
            "ewma_s": entry["ewma_s"],
            "count": entry["count"],
        }
        for (target, signature), entry in sorted(entries.items())
    ]


def _payload_sha256(entries: List[Dict]) -> str:
    text = json.dumps(entries, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CostModel:
    """EWMA cost estimates per ``(target, subgraph signature)``.

    Thread-safe: parallel dispatch waves record and choose concurrently.
    ``path`` (a ``<out>/costs/`` directory) is optional — without it the
    model lives purely in memory, which is what library users and the
    equivalence tests want; the CLI wires the directory so history
    accumulates across ``exl run``/``exl update`` processes.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        alpha: float = 0.3,
        metrics=None,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.path: Optional[Path] = (
            Path(path) / COST_HISTORY_FILE if path is not None else None
        )
        self.alpha = alpha
        #: optional :class:`repro.obs.MetricsRegistry`; the engine wires
        #: its own registry in before :meth:`load` so cold starts from a
        #: damaged history are counted, not silent
        self.metrics = metrics
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, str], Dict[str, float]] = {}

    # -- estimation ---------------------------------------------------------
    def record(self, target: str, signature: str, duration_s: float) -> None:
        """Fold one clean attempt execution time into the EWMA."""
        if duration_s < 0.0 or duration_s != duration_s:  # negative or NaN
            return
        with self._lock:
            entry = self._entries.get((target, signature))
            if entry is None:
                self._entries[(target, signature)] = {
                    "ewma_s": float(duration_s),
                    "count": 1,
                }
            else:
                entry["ewma_s"] += self.alpha * (duration_s - entry["ewma_s"])
                entry["count"] += 1

    def estimate(self, target: str, signature: str) -> Optional[float]:
        """The EWMA estimate, or None when never measured."""
        with self._lock:
            entry = self._entries.get((target, signature))
            return None if entry is None else entry["ewma_s"]

    def observations(self, target: str, signature: str) -> int:
        with self._lock:
            entry = self._entries.get((target, signature))
            return 0 if entry is None else int(entry["count"])

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- choosing -----------------------------------------------------------
    def choose(
        self,
        signature: str,
        candidates: Sequence[str],
        static_target: str,
        metrics=None,
    ) -> CostDecision:
        """Pick the target for a subgraph with this signature.

        Deterministic given the model state: the cold-start policy keeps
        the static assignment until it is measured, then explores each
        unmeasured candidate once (fewest observations first, name as
        tie-break), then exploits the argmin estimate.  Counts
        ``dispatch.cost.decisions`` plus ``.hits`` / ``.explorations``
        in ``metrics`` — the *caller's* registry wins over the model's
        own, so a model shared across engine instances counts each
        decision in the run it actually happened in.
        """
        metrics = metrics if metrics is not None else self.metrics
        candidates = list(dict.fromkeys(candidates))
        if static_target not in candidates:
            candidates.insert(0, static_target)
        if metrics is not None:
            metrics.inc("dispatch.cost.decisions")
        estimates = {c: self.estimate(c, signature) for c in candidates}
        if estimates[static_target] is None:
            # cold start: keep the paper's static assignment (and, by
            # running it, measure the baseline the alternatives must beat)
            if metrics is not None:
                metrics.inc("dispatch.cost.explorations")
            return CostDecision(static_target, None, "exploration")
        unmeasured = [c for c in candidates if estimates[c] is None]
        if unmeasured:
            chosen = min(
                unmeasured,
                key=lambda c: (self.observations(c, signature), c),
            )
            if metrics is not None:
                metrics.inc("dispatch.cost.explorations")
            return CostDecision(chosen, None, "exploration")
        chosen = min(candidates, key=lambda c: (estimates[c], c))
        if metrics is not None:
            metrics.inc("dispatch.cost.hits")
        return CostDecision(chosen, estimates[chosen], "hit")

    # -- persistence --------------------------------------------------------
    def load(self) -> bool:
        """Attach the persisted history, if any.

        Returns True when warm history was loaded.  An *absent* file is
        the ordinary cold start and stays silent; a file that exists
        but cannot be trusted — unreadable, torn JSON, wrong format,
        checksum mismatch, malformed entries — is counted as
        ``dispatch.cost.fallback.reason:history-unreadable`` and the
        model starts cold (the next :meth:`save` heals the file).
        """
        if self.path is None:
            return False
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return False
        except OSError:
            self._count_unreadable()
            return False
        try:
            document = json.loads(text)
        except ValueError:
            self._count_unreadable()
            return False
        if (
            not isinstance(document, dict)
            or document.get("format") != COST_HISTORY_FORMAT
            or not isinstance(document.get("entries"), list)
        ):
            self._count_unreadable()
            return False
        entries = document["entries"]
        try:
            if _payload_sha256(entries) != document.get("payload_sha256"):
                self._count_unreadable()
                return False
            loaded: Dict[Tuple[str, str], Dict[str, float]] = {}
            for item in entries:
                ewma = float(item["ewma_s"])
                count = int(item["count"])
                if ewma < 0.0 or ewma != ewma or count < 1:
                    raise ValueError("corrupt history entry")
                loaded[(str(item["target"]), str(item["signature"]))] = {
                    "ewma_s": ewma,
                    "count": count,
                }
        except (KeyError, TypeError, ValueError):
            self._count_unreadable()
            return False
        with self._lock:
            # on-disk history seeds the model; in-memory observations
            # (there are none at the ordinary load point) win on clash
            for key, entry in loaded.items():
                self._entries.setdefault(key, entry)
        return True

    def save(self) -> bool:
        """Persist the history atomically; False when unwritable.

        The document carries a ``payload_sha256`` over its own entries
        so a corrupted or hand-edited file is rejected on load, and the
        write goes through :func:`~repro.chase.atomic.atomic_write` so
        a crash mid-save leaves the previous complete history.
        """
        if self.path is None:
            return False
        from ..chase.atomic import atomic_write

        with self._lock:
            entries = _canonical_entries(self._entries)
        document = {
            "format": COST_HISTORY_FORMAT,
            "alpha": self.alpha,
            "payload_sha256": _payload_sha256(entries),
            "entries": entries,
        }
        try:
            atomic_write(self.path, json.dumps(document, indent=2) + "\n")
        except OSError:
            return False
        return True

    def _count_unreadable(self) -> None:
        if self.metrics is not None:
            self.metrics.inc("dispatch.cost.fallback.reason:history-unreadable")
