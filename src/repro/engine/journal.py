"""Write-ahead journal and crash recovery for engine runs.

ARIES in miniature: before a run mutates durable state it logs its
*intent*, and after every atomic state change it logs the *outcome*, so
a hard crash (SIGKILL, OOM, power loss) at any byte offset leaves enough
on disk to roll the run forward or back.  The journal is a per-run
append-only file of line-oriented JSON records
(``<out>/journal/<token>.wal``), each fsynced and carrying a checksum
over its own content — a torn tail fails the checksum and is dropped on
replay, never misread.

Record grammar (one JSON object per line)::

    {"seq": N, "type": TYPE, "payload": {...}, "sha256": HEX}

    TYPE := "run-start"         payload: run_id, trigger, affected,
                                         planned [{cubes, target}]
          | "subgraph-dispatch" payload: cubes, target
          | "staged-commit"     payload: subgraph (SubgraphRecord JSON),
                                         files {cube: {path, sha256}}
          | "sidecar-write"     payload: kind, path, sha256
          | "run-end"           payload: run_id, error
          | "run-complete"      payload: {}  (all persistence finished)

``sha256`` hashes the canonical serialization of ``{seq, type,
payload}``; ``seq`` is contiguous from 0, so replay also detects a
journal truncated *between* lines.

The crucial commit rule: :meth:`RunJournal.commit_subgraph` first makes
the subgraph's cubes durable (atomic CSV snapshots under
``<out>/.committed/``), *then* appends the ``staged-commit`` record with
each file's content hash.  Recovery therefore trusts a journaled commit
only when the snapshot bytes still hash to the journaled value — a kill
between the CSV write and the journal append simply leaves an
unjournaled file that recovery rolls back and the resume recomputes.

:func:`recover` replays the newest journal of an output directory and
synthesizes the standard ``run-state.json`` the CLI's ``resume`` path
already understands: verified commits are re-admitted, everything else
is marked failed, and ``exl resume`` finishes the run exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..chase.atomic import atomic_write, remove_stray_tmp
from ..model.io import cube_to_csv_text

__all__ = [
    "RunJournal",
    "RecoveryReport",
    "replay_journal",
    "recover",
    "JOURNAL_DIRNAME",
    "COMMITTED_DIRNAME",
]

JOURNAL_DIRNAME = "journal"
COMMITTED_DIRNAME = ".committed"

RUN_START = "run-start"
SUBGRAPH_DISPATCH = "subgraph-dispatch"
STAGED_COMMIT = "staged-commit"
SIDECAR_WRITE = "sidecar-write"
RUN_END = "run-end"
RUN_COMPLETE = "run-complete"


def _record_sha256(seq: int, rtype: str, payload: Dict[str, Any]) -> str:
    blob = json.dumps(
        {"seq": seq, "type": rtype, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _text_sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _file_sha256(path: Path) -> Optional[str]:
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return None


class RunJournal:
    """Append-only, fsynced write-ahead journal for one CLI run.

    Lazily creates ``<out>/journal/<token>.wal`` on the first append, so
    constructing a journal for a run that fails before dispatch leaves
    no artifact.  Appends are serialized under a lock (the dispatcher
    commits from worker threads).  ``fsync=False`` skips the per-record
    and per-snapshot fsyncs — same crash atomicity against process
    death, no power-loss guarantee — for the overhead ablation.
    """

    def __init__(
        self,
        out_dir: Union[str, Path],
        fsync: bool = True,
        token: Optional[str] = None,
    ):
        self.out_dir = Path(out_dir)
        self.fsync = fsync
        self.token = token or f"{time.time_ns()}-{os.getpid()}"
        self.path = self.out_dir / JOURNAL_DIRNAME / f"{self.token}.wal"
        self._lock = threading.Lock()
        self._handle = None
        self._seq = 0
        #: committed CSV text by cube name — cube data is immutable once
        #: committed, so the epilogue (outputs, baseline) reuses these
        #: instead of re-serializing every cube a second time
        self._texts: Dict[str, str] = {}

    # -- low-level append ------------------------------------------------------
    def append(self, rtype: str, payload: Dict[str, Any]) -> None:
        """Append one checksummed record and force it to disk."""
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a")
            seq = self._seq
            self._seq += 1
            line = json.dumps(
                {
                    "seq": seq,
                    "type": rtype,
                    "payload": payload,
                    "sha256": _record_sha256(seq, rtype, payload),
                },
                separators=(",", ":"),
            )
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    # -- record constructors ---------------------------------------------------
    def run_start(self, record, translated) -> None:
        """Log the full plan before any subgraph executes."""
        self.append(
            RUN_START,
            {
                "run_id": record.run_id,
                "trigger": list(record.trigger),
                "affected": list(record.affected),
                "planned": [
                    {
                        "cubes": list(item.subgraph.cubes),
                        "target": item.subgraph.target,
                    }
                    for item in translated
                ],
            },
        )

    def subgraph_dispatch(self, cubes, target: str) -> None:
        self.append(
            SUBGRAPH_DISPATCH, {"cubes": list(cubes), "target": target}
        )

    def commit_subgraph(self, sub_record, cubes: Dict[str, Any]) -> None:
        """Make one committed subgraph durable, then journal it.

        Writes each output cube as an atomic CSV snapshot under
        ``<out>/.committed/`` *before* appending the ``staged-commit``
        record, so the journal never vouches for bytes that are not on
        disk.  The record carries each snapshot's content hash; recovery
        re-admits the subgraph only when every file still verifies.
        """
        committed_dir = self.out_dir / COMMITTED_DIRNAME
        files: Dict[str, Dict[str, str]] = {}
        for name, cube in cubes.items():
            text = cube_to_csv_text(cube)
            destination = committed_dir / f"{name}.csv"
            atomic_write(destination, text, fsync=self.fsync)
            with self._lock:
                self._texts[name] = text
            files[name] = {
                "path": str(destination.relative_to(self.out_dir)),
                "sha256": _text_sha256(text),
            }
        self.append(
            STAGED_COMMIT,
            {"subgraph": sub_record.to_json(), "files": files},
        )

    def snapshot_text(self, name: str) -> Optional[str]:
        """The committed CSV text of ``name``, if this run committed it.

        Lets the persistence epilogue skip a second serialization of
        the same immutable cube data (measured at ~20% of a journaled
        run on 120k-tuple workloads)."""
        with self._lock:
            return self._texts.get(name)

    def adopt_snapshot(self, name: str, text: str) -> None:
        """Prime the snapshot cache with already-serialized CSV text.

        Used on resume: the committed snapshots of the interrupted run
        are read back from ``.committed/`` anyway, so handing their text
        to the journal lets the epilogue reuse it instead of serializing
        the re-admitted cubes a second time."""
        with self._lock:
            self._texts[name] = text

    def sidecar_write(self, kind: str, path: Union[str, Path],
                      sha256: Optional[str] = None) -> None:
        """Log one durable artifact written outside the commit path
        (baseline CSVs/JSON, output CSVs, columnar/lattice sidecars)."""
        path = Path(path)
        try:
            rel = str(path.relative_to(self.out_dir))
        except ValueError:
            rel = str(path)
        self.append(SIDECAR_WRITE, {"kind": kind, "path": rel, "sha256": sha256})

    def run_end(self, run_id: int, error: Optional[str]) -> None:
        self.append(RUN_END, {"run_id": run_id, "error": error})

    def run_complete(self) -> None:
        """All persistence (outputs + baseline) finished — the journal
        is now redundant and recovery treats the run as fully done."""
        self.append(RUN_COMPLETE, {})

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def discard(self) -> None:
        """Close and delete the journal (its run is fully persisted, or
        its state was captured by a durable ``run-state.json``)."""
        self.close()
        self.path.unlink(missing_ok=True)
        try:
            self.path.parent.rmdir()
        except OSError:
            pass


def replay_journal(path: Union[str, Path]) -> Tuple[List[Dict[str, Any]], int]:
    """Parse a journal, dropping the torn tail.

    Returns ``(records, torn)``: the verified records in order, and how
    many trailing lines were dropped because they failed to parse,
    failed their checksum, or broke the contiguous ``seq`` sequence.
    Everything after the first bad line is untrusted (appends are
    ordered), so replay stops there.
    """
    try:
        lines = Path(path).read_text().splitlines()
    except OSError:
        return [], 0
    records: List[Dict[str, Any]] = []
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            return records, len(lines) - index
        if not isinstance(record, dict):
            return records, len(lines) - index
        seq = record.get("seq")
        rtype = record.get("type")
        payload = record.get("payload")
        if (
            seq != len(records)
            or not isinstance(rtype, str)
            or not isinstance(payload, dict)
            or record.get("sha256") != _record_sha256(seq, rtype, payload)
        ):
            return records, len(lines) - index
        records.append({"seq": seq, "type": rtype, "payload": payload})
    return records, 0


@dataclass
class RecoveryReport:
    """What :func:`recover` found and did."""

    out_dir: Path
    #: "clean" (nothing to recover), "complete" (run fully persisted,
    #: journal deleted), "resumable" (state synthesized/validated — run
    #: ``exl resume``), "corrupt-state" (torn state, no journal to
    #: rebuild it from; the file was quarantined)
    status: str
    journal: Optional[Path] = None
    records: int = 0
    torn_records: int = 0
    tmp_removed: List[str] = field(default_factory=list)
    #: committed snapshots whose bytes no longer hash to the journaled
    #: value — deleted, their subgraphs handed back to resume
    rolled_back: List[str] = field(default_factory=list)
    #: subgraphs re-admitted from verified snapshots (cube lists joined +)
    committed: List[str] = field(default_factory=list)
    #: subgraphs left for ``exl resume`` to re-dispatch
    unfinished: List[str] = field(default_factory=list)
    state_path: Optional[Path] = None
    quarantined: Optional[Path] = None

    @property
    def exit_code(self) -> int:
        if self.status in ("clean", "complete"):
            return 0
        if self.status == "resumable":
            return 3
        return 1

    def summary(self) -> str:
        lines = [f"recover {self.out_dir}: {self.status}"]
        if self.journal is not None:
            lines.append(
                f"  journal {self.journal.name}: {self.records} record(s)"
                + (
                    f", {self.torn_records} torn line(s) dropped"
                    if self.torn_records
                    else ""
                )
            )
        if self.tmp_removed:
            lines.append(
                f"  swept {len(self.tmp_removed)} stray tmp file(s)"
            )
        for path in self.rolled_back:
            lines.append(f"  rolled back torn commit {path}")
        if self.committed:
            lines.append(
                f"  re-admitted {len(self.committed)} committed "
                f"subgraph(s): {', '.join(self.committed)}"
            )
        if self.unfinished:
            lines.append(
                f"  {len(self.unfinished)} subgraph(s) to resume: "
                f"{', '.join(self.unfinished)}"
            )
        if self.state_path is not None:
            lines.append(f"  state written to {self.state_path}")
        if self.quarantined is not None:
            lines.append(f"  quarantined corrupt state as {self.quarantined}")
        return "\n".join(lines)


def _load_json(path: Path) -> Optional[Dict[str, Any]]:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def _without_journal(
    out_dir: Path, state_path: Path, report: RecoveryReport
) -> RecoveryReport:
    """No journal to replay: validate or quarantine the state file."""
    if not state_path.exists():
        report.status = "clean"
        return report
    if _load_json(state_path) is not None:
        report.status = "resumable"
        report.state_path = state_path
        return report
    quarantine = state_path.with_name(state_path.name + ".corrupt")
    os.replace(state_path, quarantine)
    report.status = "corrupt-state"
    report.quarantined = quarantine
    return report


def recover(
    out_dir: Union[str, Path],
    state_path: Optional[Union[str, Path]] = None,
) -> RecoveryReport:
    """Replay the newest journal of ``out_dir`` after a hard crash.

    The recovery algorithm:

    1. Sweep stray atomic-write temp files (torn unjournaled writes).
    2. Replay the newest ``journal/*.wal``, dropping its torn tail;
       older journals are superseded and deleted.
    3. ``run-complete`` present -> the run persisted everything before
       dying (or the journal outlived a finished run): delete it, done.
    4. Otherwise verify every journaled ``staged-commit`` snapshot by
       content hash — mismatching or missing files are rolled back —
       and synthesize ``run-state.json``: verified subgraphs keep their
       recorded outcomes, every other *planned* subgraph is marked
       failed.  ``exl resume`` then re-dispatches exactly the work the
       crash destroyed.
    5. With no journal at all, a parseable ``run-state.json`` is already
       resumable; a torn one is quarantined as ``*.corrupt``.
    """
    out_dir = Path(out_dir)
    state_path = (
        Path(state_path) if state_path else out_dir / "run-state.json"
    )
    report = RecoveryReport(out_dir=out_dir, status="clean")
    report.tmp_removed = [str(p) for p in remove_stray_tmp(out_dir)]

    journal_dir = out_dir / JOURNAL_DIRNAME
    wals = sorted(
        journal_dir.glob("*.wal"), key=lambda p: p.stat().st_mtime
    ) if journal_dir.is_dir() else []
    for stale in wals[:-1]:
        stale.unlink(missing_ok=True)
    if not wals:
        return _without_journal(out_dir, state_path, report)

    journal_path = wals[-1]
    records, torn = replay_journal(journal_path)
    report.journal = journal_path
    report.records = len(records)
    report.torn_records = torn
    if not records:
        journal_path.unlink(missing_ok=True)
        return _without_journal(out_dir, state_path, report)

    if any(r["type"] == RUN_COMPLETE for r in records):
        # the run persisted everything (run-complete precedes cleanup);
        # finish the interrupted cleanup: state file and commit
        # snapshots are stale once the baseline superseded them
        if state_path.exists():
            state_path.unlink()
        committed_dir = out_dir / COMMITTED_DIRNAME
        if committed_dir.is_dir():
            shutil.rmtree(committed_dir, ignore_errors=True)
        journal_path.unlink(missing_ok=True)
        report.status = "complete"
        return report

    # records after the last run-start describe the interrupted run
    start_index = max(
        (i for i, r in enumerate(records) if r["type"] == RUN_START),
        default=None,
    )
    if start_index is None:
        # dispatch never began; whatever state exists already rules
        journal_path.unlink(missing_ok=True)
        return _without_journal(out_dir, state_path, report)
    start = records[start_index]["payload"]
    run_records = records[start_index:]

    # verify journaled commits against the bytes actually on disk
    verified: Dict[Tuple[str, ...], Dict[str, Any]] = {}
    committed_files: Dict[str, str] = {}
    for record in run_records:
        if record["type"] != STAGED_COMMIT:
            continue
        payload = record["payload"]
        sub = payload.get("subgraph", {})
        files = payload.get("files", {})
        ok = True
        for name, entry in files.items():
            path = out_dir / entry.get("path", "")
            if _file_sha256(path) != entry.get("sha256"):
                ok = False
                if path.exists():
                    path.unlink(missing_ok=True)
                    report.rolled_back.append(entry.get("path", str(path)))
        if ok:
            verified[tuple(sub.get("cubes", ()))] = payload
        # a later commit of the same cubes (resume within one journal)
        # supersedes: dict assignment keeps the newest

    subgraphs: List[Dict[str, Any]] = []
    for planned in start.get("planned", []):
        cubes = tuple(planned.get("cubes", ()))
        hit = verified.get(cubes)
        if hit is not None:
            subgraphs.append(hit["subgraph"])
            report.committed.append("+".join(cubes))
            for name, entry in hit["files"].items():
                committed_files[name] = entry["path"]
        else:
            label = "+".join(cubes)
            report.unfinished.append(label)
            subgraphs.append(
                {
                    "cubes": list(cubes),
                    "target": planned.get("target", "chase"),
                    "duration_s": 0.0,
                    "tuples_written": 0,
                    "versions": {},
                    "outcome": "failed",
                    "attempts": 0,
                    "error": "crashed before commit (recovered from journal)",
                }
            )

    crash_error = (
        f"crashed: {len(report.unfinished)} subgraph(s) never "
        f"committed (recovered from journal)"
        if report.unfinished
        else None
    )
    record = {
        "run_id": start.get("run_id", 0),
        "trigger": list(start.get("trigger", [])),
        "affected": list(start.get("affected", [])),
        "subgraphs": subgraphs,
        "on_error": "continue",
        "error": crash_error,
    }
    merged_committed = dict(committed_files)
    # a crashed *resume* run only replans its todo subgraphs, but the
    # prior partial run's state file still names the rest — fold the
    # journal's results over it so earlier commits survive the merge
    previous = _load_json(state_path)
    if previous is not None and isinstance(previous.get("record"), dict):
        prev_record = previous["record"]
        if prev_record.get("run_id") == record["run_id"]:
            by_cubes = {tuple(s["cubes"]): s for s in subgraphs}
            folded = [
                by_cubes.pop(tuple(s["cubes"]), s)
                for s in prev_record.get("subgraphs", [])
            ]
            folded.extend(by_cubes.values())
            record = dict(prev_record)
            record["subgraphs"] = folded
            record["on_error"] = "continue"
            record["error"] = crash_error
            merged_committed = dict(previous.get("committed", {}))
            merged_committed.update(committed_files)
    state = {"record": record, "committed": merged_committed}
    atomic_write(state_path, json.dumps(state, indent=2) + "\n")
    journal_path.unlink(missing_ok=True)
    report.status = "resumable"
    report.state_path = state_path
    return report
