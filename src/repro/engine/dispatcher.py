"""The dispatcher (Section 6), hardened for partial failure.

Assigns each translated subgraph to its target engine and executes them
in dependency order.  Subgraphs with no mutual dependencies form a
*wave* and can run concurrently (the paper's "parallelization and
optimization patterns"); ``parallel=True`` executes every wave on one
shared thread pool.  Data moves between engines through the catalog's
versioned store: inputs are read from it, results written back — all
cubes of a subgraph are staged first and committed atomically under the
dispatcher lock, so a crash mid-subgraph never publishes half of it.

Fault tolerance (the paper's chase "never fails"; real target engines
do):

* **Retries** — :class:`~repro.errors.TransientBackendError` is retried
  up to ``retries`` times with exponential backoff and deterministic
  jitter; every other exception is treated as permanent.
* **Deadlines** — ``deadline_s`` bounds each subgraph execution
  (including its retries) in wall-clock time; backends are checked
  cooperatively between tgd units and overruns raise
  :class:`~repro.errors.DeadlineExceededError`.
* **Degradation** — under ``on_error="degrade"``, a subgraph whose
  native backend failed permanently is re-translated for each target in
  its fallback chain (default: the reference chase backend, which
  supports every operator) and re-run there.
* **Partial failure** — under ``on_error="continue"`` (or ``degrade``),
  a failed subgraph does not abort the run: independent subgraphs in
  the same and later waves keep executing, downstream dependents are
  marked *skipped*, and every planned subgraph leaves a
  :class:`SubgraphRecord` with its outcome so the run can be resumed.
  Under the default ``on_error="fail"``, the original exception
  propagates unchanged once the current wave has drained.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..chase.delta import DeltaRunResult
from ..errors import (
    DeadlineExceededError,
    EngineError,
    TransientBackendError,
)
from ..model.catalog import MetadataCatalog
from ..model.cube import Cube
from ..obs import NULL_TRACER, MetricsRegistry
from . import faults as faults_mod
from .costmodel import ADAPTIVE_TARGETS, CostModel, subgraph_signature
from .determination import DependencyGraph
from .faults import FaultPlan, _stable_unit
from .history import RunRecord, SubgraphRecord
from .translation import TranslatedSubgraph

__all__ = ["Dispatcher", "ON_ERROR_MODES", "default_fallback_chains"]

ON_ERROR_MODES = ("fail", "continue", "degrade")

# stateless, so one shared instance serves every dispatcher thread
_NULL_SCOPE = nullcontext()


def default_fallback_chains() -> Dict[str, Tuple[str, ...]]:
    """Every native target degrades to the reference chase backend."""
    return {
        target: ("chase",)
        for target in ("sql", "r", "rscript", "matlab", "mscript", "etl")
    }


def _store_matches_rows(store, cube: Cube) -> bool:
    """True when ``store``'s insertion order is exactly ``cube``'s
    ``to_rows()`` order (measures pairwise equal, NaN matching NaN by
    identity so retraction semantics survive the attach).

    A columnar store's insertion order becomes the enumeration order of
    every consumer that adopts it — chase relation views, baseline CSV
    writing — so attaching a content-equal store with a *different* row
    order would make warm runs emit differently-ordered baselines than
    cold runs (CSV churn, sidecar invalidation noise).
    """
    if store.n_rows != len(cube):
        return False
    for fact, row in zip(store.rows(), cube.to_rows()):
        if fact[:-1] != row[:-1]:
            return False
        a, b = fact[-1], row[-1]
        if a is not b and a != b:
            return False
    return True


class Dispatcher:
    """Executes translated subgraphs against their target engines."""

    def __init__(
        self,
        catalog: MetadataCatalog,
        graph: DependencyGraph,
        parallel: bool = False,
        max_workers: int = 4,
        as_of: Optional[int] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        retries: Optional[int] = None,
        deadline_s: Optional[float] = None,
        on_error: Optional[str] = None,
        backoff_s: Optional[float] = None,
        backoff_factor: float = 2.0,
        fallback: Optional[Mapping[str, Sequence[str]]] = None,
        fault_plan: Optional[FaultPlan] = None,
        retranslate=None,
        delta: bool = False,
        dirty: Optional[Sequence[str]] = None,
        journal=None,
        cost_model: Optional[CostModel] = None,
        adaptive: bool = False,
    ):
        self.catalog = catalog
        self.graph = graph
        #: optional :class:`repro.engine.journal.RunJournal` — when set,
        #: every subgraph logs its dispatch before executing and its
        #: commit *after* the cubes are durably snapshotted, so a hard
        #: crash can be rolled forward by ``exl recover``
        self.journal = journal
        #: incremental mode (EXLEngine.update): subgraphs whose inputs
        #: all stayed clean are skipped with outcome "clean"; executed
        #: chase subgraphs go through ``run_mapping_delta`` and their
        #: unchanged outputs keep their stored versions (no put)
        self.delta = delta
        # cube names whose *content* changed this run; seeded with the
        # dirty elementary cubes, grows as subgraphs publish changed
        # outputs.  Guarded by the dispatcher lock.
        self._dirty: Set[str] = set(dirty or ())
        # per-tgd delta outcome counters, aggregated across subgraphs
        self.delta_dirty_tgds = 0
        self.delta_clean_tgds = 0
        self.delta_fallback_tgds = 0
        self.delta_fallback_reasons: Dict[str, int] = {}
        self.parallel = parallel
        self.max_workers = max_workers
        #: read *elementary* inputs at this historical version (vintage
        #: replay); derived intermediates always come from the current run
        self.as_of = as_of
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = MetricsRegistry() if metrics is None else metrics
        # -- failure policy; None falls back to the chaos-mode defaults
        # (tests/CI running the suite under injected faults), then to
        # the fail-fast zero-retry behaviour of the plain dispatcher
        if retries is None:
            retries = faults_mod.chaos_retries() or 0
        self.retries = max(0, int(retries))
        self.deadline_s = deadline_s
        if on_error is None:
            on_error = "fail"
        if on_error not in ON_ERROR_MODES:
            raise EngineError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        self.on_error = on_error
        if backoff_s is None:
            backoff_s = faults_mod.chaos_backoff_s()
            if backoff_s is None:
                backoff_s = 0.05
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self.fallback: Dict[str, Tuple[str, ...]] = {
            target: tuple(chain)
            for target, chain in (
                fallback if fallback is not None else default_fallback_chains()
            ).items()
        }
        if fault_plan is None:
            fault_plan = faults_mod.chaos_plan()
        self.fault_plan = fault_plan
        #: ``(cubes, target) -> TranslatedSubgraph``, wired to
        #: ``TranslationEngine.for_target`` by the engine; without it
        #: degradation (and adaptive re-targeting) is unavailable
        self.retranslate = retranslate
        #: learned per-(target, signature) execution costs.  When set,
        #: every successful subgraph feeds its clean attempt time back —
        #: static runs train the model too; only ``adaptive`` lets it
        #: *choose* the target (which needs ``retranslate``)
        self.cost_model = cost_model
        self.adaptive = bool(adaptive)
        if self.adaptive and self.cost_model is None:
            raise EngineError("adaptive dispatch requires a cost model")
        if self.adaptive and self.retranslate is None:
            raise EngineError("adaptive dispatch requires a retranslate hook")
        # -- shared mutable state; every access goes through the lock.
        # _computed_this_run feeds the as_of vintage logic; _unavailable
        # holds cubes whose producing subgraph failed or was skipped, so
        # dependents skip instead of silently reading stale versions.
        self._lock = threading.Lock()
        self._computed_this_run: Set[str] = set()
        self._unavailable: Set[str] = set()
        self._errors: Dict[Tuple[str, ...], BaseException] = {}
        #: cube -> store version for every put this run performed (cubes
        #: whose content actually changed; version-stable skips are not
        #: listed).  Read by the engine's OLAP hook to refresh only the
        #: lattices a run touched.
        self.committed_versions: Dict[str, int] = {}

    def dispatch(
        self, translated: Sequence[TranslatedSubgraph], record: RunRecord
    ) -> None:
        """Run all subgraphs, respecting inter-subgraph dependencies."""
        waves = self.waves(translated)
        record.waves = len(waves)
        record.max_wave_width = max((len(w) for w in waves), default=0)
        record.on_error = self.on_error
        # one pool for the whole dispatch, not one per wave
        pool = (
            ThreadPoolExecutor(max_workers=self.max_workers)
            if self.parallel
            else None
        )
        try:
            for index, wave in enumerate(waves):
                started = time.perf_counter()
                with self.tracer.span(
                    f"dispatch:wave:{index + 1}", category="dispatch",
                    width=len(wave),
                ) as wave_span:
                    if pool is not None and len(wave) > 1:
                        results = list(
                            pool.map(
                                lambda t: self._run_subgraph(t, wave_span),
                                wave,
                            )
                        )
                    else:
                        results = [self._run_subgraph(t, wave_span) for t in wave]
                self.metrics.observe("dispatch.wave.width", len(wave))
                self.metrics.observe(
                    "dispatch.wave.duration_s", time.perf_counter() - started
                )
                record.subgraphs.extend(results)
                if self.on_error == "fail":
                    failed = next(
                        (r for r in results if r.outcome == "failed"), None
                    )
                    if failed is not None:
                        # persist outcomes for the work that never ran,
                        # so a resume knows what is left, then surface
                        # the original exception unchanged
                        self._record_unreached(waves[index + 1 :], record)
                        raise self._errors.get(
                            failed.cubes,
                            EngineError(
                                f"subgraph {failed.cubes} failed: {failed.error}"
                            ),
                        )
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        self.metrics.inc("dispatch.subgraphs", len(record.subgraphs))

    def _record_unreached(
        self, remaining_waves: Sequence[Sequence[TranslatedSubgraph]],
        record: RunRecord,
    ) -> None:
        for wave in remaining_waves:
            for item in wave:
                with self._lock:
                    self._unavailable.update(item.subgraph.cubes)
                record.subgraphs.append(
                    SubgraphRecord(
                        item.subgraph.cubes,
                        item.subgraph.target,
                        0.0,
                        0,
                        {},
                        outcome="skipped",
                        attempts=0,
                        error="not reached: an earlier wave aborted the run",
                    )
                )

    def waves(
        self, translated: Sequence[TranslatedSubgraph]
    ) -> List[List[TranslatedSubgraph]]:
        """Group subgraphs into dependency waves.

        Subgraph B depends on subgraph A when one of B's inputs is a
        cube A computes.  Every subgraph in a wave only depends on
        earlier waves.
        """
        produced_by: Dict[str, int] = {}
        for index, item in enumerate(translated):
            for cube in item.subgraph.cubes:
                produced_by[cube] = index
        depends: List[Set[int]] = []
        for item in translated:
            deps = {
                produced_by[name]
                for name in item.inputs
                if name in produced_by
            }
            depends.append(deps)
        assigned: Dict[int, int] = {}
        waves: List[List[TranslatedSubgraph]] = []
        remaining = set(range(len(translated)))
        while remaining:
            wave = [
                i
                for i in sorted(remaining)
                if all(d in assigned for d in depends[i])
            ]
            if not wave:
                raise EngineError("cyclic dependency between subgraphs")
            for i in wave:
                assigned[i] = len(waves)
            waves.append([translated[i] for i in wave])
            remaining -= set(wave)
        return waves

    # -- execution of one subgraph ----------------------------------------------
    def _run_subgraph(
        self, item: TranslatedSubgraph, wave_span=None
    ) -> SubgraphRecord:
        """Execute one subgraph under the full failure policy."""
        cubes = item.subgraph.cubes
        with self._lock:
            blocked = [n for n in item.inputs if n in self._unavailable]
        if blocked:
            with self._lock:
                self._unavailable.update(cubes)
            self.metrics.inc("dispatch.skipped")
            return SubgraphRecord(
                cubes,
                item.subgraph.target,
                0.0,
                0,
                {},
                outcome="skipped",
                attempts=0,
                error=f"upstream cube(s) unavailable: {', '.join(blocked)}",
            )
        if self.delta:
            with self._lock:
                input_dirty = any(n in self._dirty for n in item.inputs)
            if not input_dirty and all(
                self.catalog.has_data(n) for n in cubes
            ):
                # every input is content-identical to the baseline and
                # the previous outputs are in the store: replay them by
                # reference instead of re-executing anything
                versions = {
                    n: self.catalog.store.latest_version(n) for n in cubes
                }
                self.metrics.inc("dispatch.clean")
                clean_record = SubgraphRecord(
                    cubes,
                    item.subgraph.target,
                    0.0,
                    0,
                    versions,
                    outcome="clean",
                    attempts=0,
                )
                if self.journal is not None:
                    # a clean replay is still a commit the resume path
                    # must be able to re-admit after a crash
                    self.journal.commit_subgraph(
                        clean_record,
                        {n: self.catalog.data(n) for n in cubes},
                    )
                return clean_record

        static_target = item.subgraph.target
        signature: Optional[str] = None
        chosen_target: Optional[str] = None
        predicted_s: Optional[float] = None
        if self.cost_model is not None:
            signature = self._signature_of(item)
        if self.adaptive and signature is not None:
            decision = self.cost_model.choose(
                signature,
                self._candidate_targets(item),
                static_target,
                metrics=self.metrics,
            )
            chosen_target = decision.target
            predicted_s = decision.predicted_s
            if decision.target != static_target:
                try:
                    item = self.retranslate(cubes, decision.target)
                except Exception:
                    # an untranslatable choice falls back to the static
                    # plan; the model never learns the bogus candidate
                    self.metrics.inc("dispatch.cost.retranslate_failed")
                    chosen_target = static_target
                    predicted_s = None

        if self.journal is not None:
            self.journal.subgraph_dispatch(cubes, item.subgraph.target)
        start = time.perf_counter()
        attempts = 0
        recovered_error: Optional[str] = None
        outputs = None
        outcome = "failed"
        executed_target = item.subgraph.target
        attempt_s = 0.0
        try:
            outputs, native_attempts, recovered_error, attempt_s = (
                self._attempt_with_retries(item, wave_span)
            )
            attempts += native_attempts
            outcome = "ok" if native_attempts == 1 else "retried"
        except Exception as exc:
            attempts += self._attempts_of(exc)
            primary = exc
            recovered_error = f"{type(exc).__name__}: {exc}"
            if self._degradation_enabled(item):
                outputs, fb_attempts, executed_target, attempt_s = (
                    self._degrade(item, wave_span)
                )
                attempts += fb_attempts
                if outputs is not None:
                    outcome = "degraded"
                    self.metrics.inc("dispatch.degraded")
            if outputs is None:
                with self._lock:
                    self._unavailable.update(cubes)
                    self._errors[cubes] = primary
                self.metrics.inc("dispatch.failed")
                return SubgraphRecord(
                    cubes,
                    static_target,
                    time.perf_counter() - start,
                    0,
                    {},
                    outcome="failed",
                    attempts=attempts,
                    error=recovered_error,
                    executed_target=executed_target,
                    chosen_target=chosen_target,
                    predicted_s=predicted_s,
                )

        wall_s = time.perf_counter() - start
        if self.cost_model is not None and signature is not None:
            # clean successful-attempt time only — never backoff sleep,
            # never failed attempts — credited to the target that
            # actually ran (a degraded subgraph teaches the fallback's
            # cost, not the broken native target's)
            self.cost_model.record(executed_target, signature, attempt_s)
        changed_map: Optional[Dict[str, bool]] = None
        if isinstance(outputs, DeltaRunResult):
            self._note_delta(outputs.stats)
            changed_map = outputs.changed
            outputs = outputs.cubes
        elif self.delta:
            # a plain-output path ran under delta mode (non-chase
            # backend, or a degraded rerun): classify each output
            # against its stored version so cleanliness still
            # propagates, and count the subgraph as a full fallback
            changed_map = self._classify_against_store(cubes, outputs)
            with self._lock:
                count = len(item.mapping.target_tgds)
                self.delta_fallback_tgds += count
                self.delta_fallback_reasons["non-incremental-backend"] = (
                    self.delta_fallback_reasons.get("non-incremental-backend", 0)
                    + count
                )
        # stage every output cube first, then commit all of them under
        # the lock: the store never sees a partially-written subgraph.
        # In delta mode an output whose content did not change keeps its
        # stored version — no put, so version history stays stable and
        # downstream subgraphs see it as clean
        staged = [(name, outputs[name]) for name in cubes]
        versions: Dict[str, int] = {}
        tuples = 0
        with self._lock:
            for name, cube in staged:
                unchanged = (
                    changed_map is not None
                    and not changed_map.get(name, True)
                    and self.catalog.has_data(name)
                )
                if unchanged:
                    versions[name] = self.catalog.store.latest_version(name)
                    # a clean recompute keeps the stored version; carry
                    # the fresh cube's columnar store onto it when the
                    # stored one has none (e.g. a CSV re-admitted
                    # baseline), so later runs adopt instead of
                    # re-encoding — but only when the store's insertion
                    # order matches the stored cube's rows exactly:
                    # content is delta-identical, yet a different row
                    # order would leak into everything that enumerates
                    # the adopted store (baseline CSVs, relation views)
                    # and make warm and cold runs diverge
                    stored = self.catalog.data(name)
                    if getattr(stored, "_colstore", None) is None:
                        fresh = getattr(cube, "_colstore", None)
                        if fresh is not None and _store_matches_rows(
                            fresh, stored
                        ):
                            stored._colstore = fresh
                else:
                    versions[name] = self.catalog.store.put(cube)
                    self.committed_versions[name] = versions[name]
                    tuples += len(cube)
                    if self.delta:
                        self._dirty.add(name)
                self._computed_this_run.add(name)
        # duration_s is the clean successful-attempt execution time (the
        # number any cost reasoning must use); the inclusive span — with
        # retries and backoff sleep — is tracked separately as wall_s
        self.metrics.observe("dispatch.subgraph.duration_s", attempt_s)
        self.metrics.observe("dispatch.subgraph.wall_s", wall_s)
        sub_record = SubgraphRecord(
            cubes,
            static_target,
            wall_s,
            tuples,
            versions,
            outcome=outcome,
            attempts=attempts,
            error=recovered_error,
            executed_target=executed_target,
            observed_s=attempt_s,
            chosen_target=chosen_target,
            predicted_s=predicted_s,
        )
        if self.journal is not None:
            # snapshot-then-log: the cubes hit disk atomically before
            # the staged-commit record vouches for them, so recovery
            # never re-admits bytes the crash tore
            self.journal.commit_subgraph(sub_record, dict(staged))
        return sub_record

    def _note_delta(self, stats) -> None:
        """Fold one subgraph's delta statistics into the run totals."""
        with self._lock:
            self.delta_dirty_tgds += stats.dirty_tgds
            self.delta_clean_tgds += stats.clean_tgds
            self.delta_fallback_tgds += stats.fallback_tgds
            for reason, count in stats.fallback_reasons.items():
                self.delta_fallback_reasons[reason] = (
                    self.delta_fallback_reasons.get(reason, 0) + count
                )

    def _classify_against_store(
        self, cubes: Tuple[str, ...], outputs: Dict[str, Cube]
    ) -> Dict[str, bool]:
        """Changed flags for outputs of a non-incremental execution,
        by diffing against the latest stored version (NaN-consistent,
        so a bit-identical recompute registers as clean)."""
        changed: Dict[str, bool] = {}
        for name in cubes:
            if not self.catalog.has_data(name):
                changed[name] = True
                continue
            previous = self.catalog.data(name)
            changed[name] = not previous.delta(outputs[name]).is_empty
        return changed

    # -- adaptive target choice ----------------------------------------------
    def _signature_of(self, item: TranslatedSubgraph) -> str:
        """Workload signature: tgd kinds × log2-bucketed input sizes."""
        cards = [
            len(self.catalog.data(name))
            if self.catalog.has_data(name)
            else 0
            for name in item.inputs
        ]
        return subgraph_signature(item.mapping, cards, delta=self.delta)

    def _candidate_targets(self, item: TranslatedSubgraph) -> List[str]:
        """Targets every cube of the subgraph supports, in the stable
        ``ADAPTIVE_TARGETS`` order (determinism of exploration)."""
        supported: Optional[Set[str]] = None
        for cube in item.subgraph.cubes:
            targets = self.graph.supported_targets(cube)
            supported = targets if supported is None else supported & targets
        return [t for t in ADAPTIVE_TARGETS if supported and t in supported]

    # -- retry / degradation machinery ---------------------------------------
    def _attempt_with_retries(
        self, item: TranslatedSubgraph, wave_span=None
    ) -> Tuple[Dict[str, Cube], int, Optional[str], float]:
        """Run one translated subgraph, retrying transient failures.

        Returns ``(outputs, attempts, recovered_error, attempt_s)``:
        ``recovered_error`` is the message of the most recent retried
        transient failure (None when the first attempt succeeded) and
        ``attempt_s`` times *only* the successful attempt's execution —
        failed attempts and backoff sleep are excluded, so the cost
        model and per-subgraph metrics see what the backend actually
        costs, not what this run's bad luck cost.  Raises the last error
        once retries are exhausted, the error is permanent, or the
        deadline passed; the raised exception carries the attempt count
        for the caller's bookkeeping.
        """
        cubes = item.subgraph.cubes
        target = item.subgraph.target
        deadline = (
            time.monotonic() + self.deadline_s
            if self.deadline_s is not None
            else None
        )
        attempt = 0
        recovered: Optional[str] = None
        while True:
            attempt += 1
            try:
                if deadline is not None and time.monotonic() >= deadline:
                    raise DeadlineExceededError(
                        f"subgraph {target}:{'+'.join(cubes)} exceeded its "
                        f"{self.deadline_s:g}s deadline after "
                        f"{attempt - 1} attempt(s)"
                    )
                attempt_started = time.perf_counter()
                outputs = self._run_attempt(item, attempt - 1, deadline, wave_span)
                attempt_s = time.perf_counter() - attempt_started
                return outputs, attempt, recovered, attempt_s
            except TransientBackendError as exc:
                out_of_budget = attempt > self.retries or (
                    deadline is not None and time.monotonic() >= deadline
                )
                if out_of_budget:
                    exc._dispatch_attempts = attempt
                    raise
                recovered = f"{type(exc).__name__}: {exc}"
                delay = self._backoff_delay(cubes, attempt, deadline)
                if delay is None:
                    # the backoff would consume the remaining budget (or
                    # the deadline already passed and the clamp would
                    # yield a 0 s hot-loop retry): abort now rather than
                    # sleep into a guaranteed-dead attempt
                    abort = DeadlineExceededError(
                        f"subgraph {target}:{'+'.join(cubes)} aborted "
                        f"before backoff: remaining {self.deadline_s:g}s "
                        f"deadline budget cannot cover the attempt "
                        f"{attempt} backoff"
                    )
                    abort._dispatch_attempts = attempt
                    raise abort from exc
                self.metrics.inc("dispatch.retries")
                time.sleep(delay)
            except Exception as exc:
                exc._dispatch_attempts = attempt
                raise

    def _backoff_delay(
        self,
        cubes: Tuple[str, ...],
        attempt: int,
        deadline: Optional[float],
    ) -> Optional[float]:
        """Exponential backoff with deterministic jitter.

        The jitter fraction comes from a stable hash of the subgraph
        and attempt — not a shared RNG — so parallel and sequential
        dispatch sleep identically and stay reproducible.  Returns None
        (counted as ``dispatch.deadline.aborted_backoffs``) when the
        remaining deadline budget cannot cover the delay — sleeping
        would only set up an attempt that dies on arrival, and a
        deadline that already passed would clamp to a 0 s sleep and
        hot-loop through the remaining retries.  A zero delay with
        budget to spare (``backoff_s=0``) stays a legal immediate retry.
        """
        delay = self.backoff_s * (self.backoff_factor ** (attempt - 1))
        jitter = _stable_unit(0, "backoff", "+".join(cubes), attempt)
        delay *= 0.5 + jitter  # in [0.5x, 1.5x)
        if deadline is not None and deadline - time.monotonic() <= delay:
            self.metrics.inc("dispatch.deadline.aborted_backoffs")
            return None
        return delay

    @staticmethod
    def _attempts_of(exc: BaseException) -> int:
        return getattr(exc, "_dispatch_attempts", 1)

    def _run_attempt(
        self,
        item: TranslatedSubgraph,
        attempt: int,
        deadline: Optional[float],
        wave_span=None,
    ) -> Dict[str, Cube]:
        inputs = self._gather_inputs(item)
        target = item.subgraph.target
        cubes = item.subgraph.cubes
        check = None
        if deadline is not None:
            label = f"{target}:{'+'.join(cubes)}"
            deadline_s = self.deadline_s

            def check(_deadline=deadline, _label=label, _budget=deadline_s):
                if time.monotonic() >= _deadline:
                    raise DeadlineExceededError(
                        f"subgraph {_label} exceeded its {_budget:g}s "
                        f"deadline mid-execution"
                    )

        with self.tracer.span(
            f"subgraph:{target}:{'+'.join(cubes)}",
            category="dispatch",
            parent=wave_span,
            target=target,
            attempt=attempt,
        ):
            if self.fault_plan is not None:
                self.fault_plan.apply(
                    target, cubes, attempt, metrics=self.metrics
                )
            # a backend that shards whole-mapping runs draws per-shard
            # fault decisions from the same plan while this attempt is
            # in flight (see ChaseBackend.fault_scope)
            scope = getattr(item.backend, "fault_scope", None)
            if self.fault_plan is not None and scope is not None:
                context = scope(self.fault_plan, target, cubes, attempt)
            else:
                context = _NULL_SCOPE
            with context:
                if self.delta and hasattr(item.backend, "run_mapping_delta"):
                    return item.backend.run_mapping_delta(
                        item.mapping, inputs, wanted=list(cubes), check=check
                    )
                return item.backend.run_mapping(
                    item.mapping, inputs, wanted=list(cubes), check=check
                )

    def _degradation_enabled(self, item: TranslatedSubgraph) -> bool:
        return (
            self.on_error == "degrade"
            and self.retranslate is not None
            and bool(self.fallback.get(item.subgraph.target))
        )

    def _degrade(
        self, item: TranslatedSubgraph, wave_span=None
    ) -> Tuple[Optional[Dict[str, Cube]], int, str, float]:
        """Re-translate and re-run on each fallback target in turn.

        Returns ``(outputs, attempts, executed_target, attempt_s)``;
        ``outputs`` is None when the whole chain failed.
        """
        native = item.subgraph.target
        attempts = 0
        for fallback_target in self.fallback.get(native, ()):
            if fallback_target == native:
                continue
            try:
                translated = self.retranslate(
                    item.subgraph.cubes, fallback_target
                )
                outputs, fb_attempts, _, attempt_s = (
                    self._attempt_with_retries(translated, wave_span)
                )
                return outputs, attempts + fb_attempts, fallback_target, attempt_s
            except Exception as exc:
                attempts += self._attempts_of(exc)
        return None, attempts, native, 0.0

    def _gather_inputs(self, item: TranslatedSubgraph) -> Dict[str, Cube]:
        inputs: Dict[str, Cube] = {}
        for name in item.inputs:
            if not self.catalog.has_data(name):
                raise EngineError(
                    f"subgraph for {item.subgraph.cubes} needs cube {name!r}, "
                    f"which has no stored data"
                )
            version = None
            if self.as_of is not None:
                with self._lock:
                    fresh = name in self._computed_this_run
                if not fresh:
                    version = self.as_of
            inputs[name] = self.catalog.data(name, version)
        return inputs
