"""The dispatcher (Section 6).

Assigns each translated subgraph to its target engine and executes them
in dependency order.  Subgraphs with no mutual dependencies form a
*wave* and can run concurrently (the paper's "parallelization and
optimization patterns"); ``parallel=True`` executes each wave on a
thread pool.  Data moves between engines through the catalog's
versioned store: inputs are read from it, results written back.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Set

from ..errors import EngineError
from ..model.catalog import MetadataCatalog
from ..model.cube import Cube
from ..obs import NULL_TRACER, MetricsRegistry
from .determination import DependencyGraph
from .history import RunRecord, SubgraphRecord
from .translation import TranslatedSubgraph

__all__ = ["Dispatcher"]


class Dispatcher:
    """Executes translated subgraphs against their target engines."""

    def __init__(
        self,
        catalog: MetadataCatalog,
        graph: DependencyGraph,
        parallel: bool = False,
        max_workers: int = 4,
        as_of: Optional[int] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.catalog = catalog
        self.graph = graph
        self.parallel = parallel
        self.max_workers = max_workers
        #: read *elementary* inputs at this historical version (vintage
        #: replay); derived intermediates always come from the current run
        self.as_of = as_of
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self._computed_this_run: set = set()

    def dispatch(
        self, translated: Sequence[TranslatedSubgraph], record: RunRecord
    ) -> None:
        """Run all subgraphs, respecting inter-subgraph dependencies."""
        waves = self.waves(translated)
        record.waves = len(waves)
        record.max_wave_width = max((len(w) for w in waves), default=0)
        for index, wave in enumerate(waves):
            started = time.perf_counter()
            with self.tracer.span(
                f"dispatch:wave:{index + 1}", category="dispatch",
                width=len(wave),
            ) as wave_span:
                if self.parallel and len(wave) > 1:
                    with ThreadPoolExecutor(
                        max_workers=self.max_workers
                    ) as pool:
                        results = list(
                            pool.map(
                                lambda t: self._execute(t, wave_span), wave
                            )
                        )
                else:
                    results = [self._execute(t, wave_span) for t in wave]
            self.metrics.observe("dispatch.wave.width", len(wave))
            self.metrics.observe(
                "dispatch.wave.duration_s", time.perf_counter() - started
            )
            for subgraph_record in results:
                record.subgraphs.append(subgraph_record)
        self.metrics.inc("dispatch.subgraphs", len(record.subgraphs))

    def waves(
        self, translated: Sequence[TranslatedSubgraph]
    ) -> List[List[TranslatedSubgraph]]:
        """Group subgraphs into dependency waves.

        Subgraph B depends on subgraph A when one of B's inputs is a
        cube A computes.  Every subgraph in a wave only depends on
        earlier waves.
        """
        produced_by: Dict[str, int] = {}
        for index, item in enumerate(translated):
            for cube in item.subgraph.cubes:
                produced_by[cube] = index
        depends: List[Set[int]] = []
        for item in translated:
            deps = {
                produced_by[name]
                for name in item.inputs
                if name in produced_by
            }
            depends.append(deps)
        assigned: Dict[int, int] = {}
        waves: List[List[TranslatedSubgraph]] = []
        remaining = set(range(len(translated)))
        while remaining:
            wave = [
                i
                for i in sorted(remaining)
                if all(d in assigned for d in depends[i])
            ]
            if not wave:
                raise EngineError("cyclic dependency between subgraphs")
            for i in wave:
                assigned[i] = len(waves)
            waves.append([translated[i] for i in wave])
            remaining -= set(wave)
        return waves

    # -- execution of one subgraph ----------------------------------------------
    def _execute(
        self, item: TranslatedSubgraph, wave_span=None
    ) -> SubgraphRecord:
        inputs = self._gather_inputs(item)
        start = time.perf_counter()
        with self.tracer.span(
            f"subgraph:{item.subgraph.target}:{'+'.join(item.subgraph.cubes)}",
            category="dispatch",
            parent=wave_span,
            target=item.subgraph.target,
        ) as span:
            outputs = item.backend.run_mapping(
                item.mapping, inputs, wanted=list(item.subgraph.cubes)
            )
        duration = time.perf_counter() - start
        versions: Dict[str, int] = {}
        tuples = 0
        for name in item.subgraph.cubes:
            cube = outputs[name]
            versions[name] = self.catalog.store.put(cube)
            self._computed_this_run.add(name)
            tuples += len(cube)
        span.note(tuples_written=tuples)
        self.metrics.observe("dispatch.subgraph.duration_s", duration)
        return SubgraphRecord(
            item.subgraph.cubes, item.subgraph.target, duration, tuples, versions
        )

    def _gather_inputs(self, item: TranslatedSubgraph) -> Dict[str, Cube]:
        inputs: Dict[str, Cube] = {}
        for name in item.inputs:
            if not self.catalog.has_data(name):
                raise EngineError(
                    f"subgraph for {item.subgraph.cubes} needs cube {name!r}, "
                    f"which has no stored data"
                )
            version = None
            if self.as_of is not None and name not in self._computed_this_run:
                version = self.as_of
            inputs[name] = self.catalog.data(name, version)
        return inputs
