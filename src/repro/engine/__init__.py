"""The EXLEngine architecture (Section 6, Figure 2).

Determination engine (dependency DAG, change detection, partitioning),
translation engine (subgraph -> schema mapping -> target code),
dispatcher (per-target execution, waves, data movement), historicity
(run records on top of versioned cube storage), and the
:class:`EXLEngine` facade tying them together.
"""

from .costmodel import (
    ADAPTIVE_TARGETS,
    CostDecision,
    CostModel,
    card_bucket,
    subgraph_signature,
)
from .determination import (
    DEFAULT_TARGET_PRIORITY,
    DependencyGraph,
    Subgraph,
    choose_target,
)
from .dispatcher import ON_ERROR_MODES, Dispatcher, default_fallback_chains
from .exlengine import EXLEngine
from .faults import FaultPlan, FaultRule, FaultyBackend, parse_fault_spec
from .history import COMMITTED_OUTCOMES, RunLog, RunRecord, SubgraphRecord
from .journal import RecoveryReport, RunJournal, recover, replay_journal
from .translation import TranslatedSubgraph, TranslationEngine

__all__ = [
    "DependencyGraph",
    "Subgraph",
    "choose_target",
    "DEFAULT_TARGET_PRIORITY",
    "TranslationEngine",
    "TranslatedSubgraph",
    "Dispatcher",
    "ON_ERROR_MODES",
    "default_fallback_chains",
    "CostModel",
    "CostDecision",
    "ADAPTIVE_TARGETS",
    "card_bucket",
    "subgraph_signature",
    "FaultPlan",
    "FaultRule",
    "FaultyBackend",
    "parse_fault_spec",
    "RunRecord",
    "RunLog",
    "SubgraphRecord",
    "COMMITTED_OUTCOMES",
    "RunJournal",
    "RecoveryReport",
    "recover",
    "replay_journal",
    "EXLEngine",
]
