"""Run records: the historicity of engine executions.

Cube data itself is versioned by :class:`~repro.model.VersionedStore`;
this module records the *runs* — what triggered them, which subgraphs
were dispatched where, how long each took, and the versions written —
so any past state of the system can be reconstructed.

Since the fault-tolerance layer, every planned subgraph leaves a record
even when the run goes wrong: the per-subgraph ``outcome`` is one of

* ``ok``       — executed on the first attempt and committed;
* ``retried``  — committed after one or more transient-failure retries;
* ``degraded`` — its native backend failed permanently, a fallback
  backend (``executed_target``) recomputed and committed it;
* ``clean``    — an incremental update (``EXLEngine.update``) proved
  every input unchanged, so the stored versions were re-published
  without executing anything;
* ``skipped``  — never executed because an upstream subgraph failed;
* ``failed``   — all attempts (and fallbacks, if any) failed.

``failed``/``skipped`` records are what :meth:`EXLEngine.resume`
re-dispatches; records serialize to/from plain JSON dicts so the CLI
can persist a partial run across processes.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SubgraphRecord", "RunRecord", "RunLog", "COMMITTED_OUTCOMES"]

_run_counter = itertools.count(1)

#: outcomes under which a subgraph's cubes are available in the store
#: ("clean" means an incremental update proved the stored versions are
#: still current and re-published them without executing anything)
COMMITTED_OUTCOMES = ("ok", "retried", "degraded", "clean")


@dataclass
class SubgraphRecord:
    """Execution record of one dispatched subgraph."""

    cubes: Tuple[str, ...]
    target: str
    duration_s: float
    tuples_written: int
    versions: Dict[str, int] = field(default_factory=dict)
    #: ok | retried | degraded | clean | skipped | failed
    outcome: str = "ok"
    #: execution attempts across native backend and fallbacks (0 if skipped)
    attempts: int = 1
    #: final error string for failed/skipped subgraphs (also kept for
    #: retried/degraded ones: the error that was recovered from)
    error: Optional[str] = None
    #: backend that actually committed the result (differs from
    #: ``target`` when the subgraph was degraded to a fallback, or when
    #: adaptive dispatch chose a different target than the static plan)
    executed_target: Optional[str] = None
    #: execution time of the successful attempt alone — no retry
    #: backoff sleep, no failed attempts (``duration_s`` keeps the
    #: inclusive wall time).  This is the number the cost model learns.
    observed_s: float = 0.0
    #: adaptive dispatch decision: the target the cost model picked
    #: (None on static runs) and its EWMA estimate at decision time
    #: (None while the choice was a cold-start exploration)
    chosen_target: Optional[str] = None
    predicted_s: Optional[float] = None

    def __post_init__(self):
        self.cubes = tuple(self.cubes)
        if self.executed_target is None:
            self.executed_target = self.target

    @property
    def committed(self) -> bool:
        return self.outcome in COMMITTED_OUTCOMES

    def to_json(self) -> Dict[str, Any]:
        return {
            "cubes": list(self.cubes),
            "target": self.target,
            "duration_s": self.duration_s,
            "tuples_written": self.tuples_written,
            "versions": dict(self.versions),
            "outcome": self.outcome,
            "attempts": self.attempts,
            "error": self.error,
            "executed_target": self.executed_target,
            "observed_s": self.observed_s,
            "chosen_target": self.chosen_target,
            "predicted_s": self.predicted_s,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SubgraphRecord":
        return cls(
            cubes=tuple(data["cubes"]),
            target=data["target"],
            duration_s=data.get("duration_s", 0.0),
            tuples_written=data.get("tuples_written", 0),
            versions=dict(data.get("versions", {})),
            outcome=data.get("outcome", "ok"),
            attempts=data.get("attempts", 1),
            error=data.get("error"),
            executed_target=data.get("executed_target"),
            observed_s=data.get("observed_s", 0.0),
            chosen_target=data.get("chosen_target"),
            predicted_s=data.get("predicted_s"),
        )


@dataclass
class RunRecord:
    """One determination → translation → dispatch cycle."""

    run_id: int
    trigger: Tuple[str, ...]  # changed elementary cubes
    affected: Tuple[str, ...]  # derived cubes recomputed, in order
    subgraphs: List[SubgraphRecord] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    determination_s: float = 0.0
    translation_s: float = 0.0
    # dispatch schedule shape: dependency waves over the subgraphs
    waves: int = 0
    max_wave_width: int = 0
    # chase kernel decisions: target tgds run on columnar kernels vs.
    # fallen back to the tuple-at-a-time path during this run
    vectorized_tgds: int = 0
    fallback_tgds: int = 0
    # tuple-store relations re-encoded into columnar form during this
    # run; stays 0 when every relation lived columnar-native (warm runs
    # adopt the cached stores and never pay the encode tax)
    encode_count: int = 0
    # sharded chase execution (all zero/empty when --shards <= 1 or the
    # mapping had nothing to partition): worker-process count, tuples
    # generated per shard, and wall time merging shard outputs
    shards: int = 0
    shard_tuples: List[int] = field(default_factory=list)
    shard_merge_s: float = 0.0
    # failure semantics the dispatch ran under (fail | continue | degrade)
    on_error: str = "fail"
    # cost-model-driven per-subgraph target choice was active; each
    # subgraph's decision lives in its record (chosen_target,
    # predicted_s, observed_s)
    adaptive: bool = False
    # run id this run resumed, when it was started by EXLEngine.resume
    resumed_from: Optional[int] = None
    # run id this run incrementally updated, when it was started by
    # EXLEngine.update (the baseline whose versions defined dirtiness)
    delta_of: Optional[int] = None
    # store versions of every cube with data when this run closed; a
    # later update() diffs against these to decide what is dirty
    baseline_versions: Dict[str, int] = field(default_factory=dict)
    # incremental-update outcome per target tgd (all zero on full runs):
    # re-fired with delta rules / skipped clean / recomputed in full
    delta_dirty_tgds: int = 0
    delta_clean_tgds: int = 0
    delta_fallback_tgds: int = 0
    # failure state: set when the run raised during dispatch, or — under
    # on_error != "fail" — when any subgraph finished failed/skipped
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def duration_s(self) -> float:
        """Wall time of the run; 0.0 while the run is still open.

        A record abandoned before :meth:`RunLog.close` has
        ``finished_at == 0.0``; the raw difference would be a large
        negative number, so the duration is clamped to zero instead.
        """
        if not self.finished_at:
            return 0.0
        return max(0.0, self.finished_at - self.started_at)

    @property
    def finished(self) -> bool:
        return bool(self.finished_at)

    @property
    def execution_s(self) -> float:
        return sum(s.duration_s for s in self.subgraphs)

    # -- outcome views ------------------------------------------------------
    def outcomes(self) -> Dict[str, int]:
        """Subgraph count per outcome (only outcomes that occurred)."""
        counts: Dict[str, int] = {}
        for record in self.subgraphs:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    def unfinished_subgraphs(self) -> List[SubgraphRecord]:
        """The failed/skipped subgraphs a resume would re-dispatch."""
        return [s for s in self.subgraphs if not s.committed]

    @property
    def complete(self) -> bool:
        """Every planned subgraph committed its cubes."""
        return self.finished and all(s.committed for s in self.subgraphs)

    def to_json(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "trigger": list(self.trigger),
            "affected": list(self.affected),
            "subgraphs": [s.to_json() for s in self.subgraphs],
            "waves": self.waves,
            "max_wave_width": self.max_wave_width,
            "shards": self.shards,
            "shard_tuples": list(self.shard_tuples),
            "shard_merge_s": self.shard_merge_s,
            "on_error": self.on_error,
            "adaptive": self.adaptive,
            "resumed_from": self.resumed_from,
            "delta_of": self.delta_of,
            "baseline_versions": dict(self.baseline_versions),
            "delta_dirty_tgds": self.delta_dirty_tgds,
            "delta_clean_tgds": self.delta_clean_tgds,
            "delta_fallback_tgds": self.delta_fallback_tgds,
            "error": self.error,
        }

    def summary(self) -> str:
        state = ""
        if self.failed:
            state = f" FAILED ({self.error})"
        elif not self.finished:
            state = " UNFINISHED"
        resumed = (
            f" resumed-from={self.resumed_from}"
            if self.resumed_from is not None
            else ""
        )
        if self.delta_of is not None:
            resumed += (
                f" update-of={self.delta_of} (tgds: {self.delta_dirty_tgds} "
                f"dirty / {self.delta_clean_tgds} clean / "
                f"{self.delta_fallback_tgds} fallback)"
            )
        lines = [
            f"run {self.run_id}{state}{resumed}: trigger={list(self.trigger)} "
            f"affected={len(self.affected)} cubes in {len(self.subgraphs)} "
            f"subgraphs, {self.duration_s:.3f}s total "
            f"(determination {self.determination_s * 1000:.1f}ms, "
            f"translation {self.translation_s * 1000:.1f}ms, "
            f"chase kernels {self.vectorized_tgds} vectorized / "
            f"{self.fallback_tgds} fallback, "
            f"{self.encode_count} re-encodes)"
        ]
        if self.shards:
            lines.append(
                f"  sharded chase: {self.shards} shards, tuples per shard "
                f"{self.shard_tuples}, merge {self.shard_merge_s * 1000:.1f}ms"
            )
        for record in self.subgraphs:
            flags = ""
            if (
                record.chosen_target is not None
                and record.chosen_target != record.target
            ):
                predicted = (
                    f" predicted {record.predicted_s * 1000:.1f}ms"
                    if record.predicted_s is not None
                    else " exploring"
                )
                flags += f" [adaptive -> {record.chosen_target}{predicted}]"
            if record.outcome != "ok":
                flags = f" [{record.outcome}"
                if record.outcome == "degraded":
                    flags += f" -> {record.executed_target}"
                if record.attempts > 1:
                    flags += f", {record.attempts} attempts"
                flags += "]"
                if record.error and not record.committed:
                    flags += f" {record.error}"
            lines.append(
                f"  [{record.target}] {', '.join(record.cubes)}: "
                f"{record.tuples_written} tuples in {record.duration_s:.3f}s"
                f"{flags}"
            )
        return "\n".join(lines)


class RunLog:
    """Ordered log of all runs of an engine instance."""

    def __init__(self):
        self._runs: List[RunRecord] = []

    def open(self, trigger, affected) -> RunRecord:
        record = RunRecord(
            run_id=next(_run_counter),
            trigger=tuple(trigger),
            affected=tuple(affected),
            started_at=time.perf_counter(),
        )
        self._runs.append(record)
        return record

    def close(self, record: RunRecord) -> RunRecord:
        record.finished_at = time.perf_counter()
        return record

    def restore(self, data: Dict[str, Any]) -> RunRecord:
        """Re-admit a serialized run record (CLI resume across processes).

        The record gets a fresh ``run_id`` — the original process's
        counter means nothing here — but keeps its subgraph outcomes
        and error state, so :meth:`EXLEngine.resume` can pick it up.
        """
        record = self.open(data.get("trigger", ()), data.get("affected", ()))
        record.subgraphs = [
            SubgraphRecord.from_json(s) for s in data.get("subgraphs", [])
        ]
        record.waves = data.get("waves", 0)
        record.max_wave_width = data.get("max_wave_width", 0)
        record.shards = data.get("shards", 0)
        record.shard_tuples = list(data.get("shard_tuples", []))
        record.shard_merge_s = data.get("shard_merge_s", 0.0)
        record.on_error = data.get("on_error", "fail")
        record.adaptive = data.get("adaptive", False)
        record.resumed_from = data.get("resumed_from")
        record.delta_of = data.get("delta_of")
        record.baseline_versions = dict(data.get("baseline_versions", {}))
        record.delta_dirty_tgds = data.get("delta_dirty_tgds", 0)
        record.delta_clean_tgds = data.get("delta_clean_tgds", 0)
        record.delta_fallback_tgds = data.get("delta_fallback_tgds", 0)
        record.error = data.get("error")
        return self.close(record)

    @property
    def runs(self) -> List[RunRecord]:
        return list(self._runs)

    def last(self) -> Optional[RunRecord]:
        return self._runs[-1] if self._runs else None

    def get(self, run_id: int) -> Optional[RunRecord]:
        for record in self._runs:
            if record.run_id == run_id:
                return record
        return None

    def failed(self) -> List[RunRecord]:
        """Runs that left work undone — raised, or finished with
        failed/skipped subgraphs.  ``resume`` picks from these."""
        return [
            r
            for r in self._runs
            if r.failed or any(not s.committed for s in r.subgraphs)
        ]

    def __len__(self) -> int:
        return len(self._runs)
