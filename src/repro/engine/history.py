"""Run records: the historicity of engine executions.

Cube data itself is versioned by :class:`~repro.model.VersionedStore`;
this module records the *runs* — what triggered them, which subgraphs
were dispatched where, how long each took, and the versions written —
so any past state of the system can be reconstructed.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["SubgraphRecord", "RunRecord", "RunLog"]

_run_counter = itertools.count(1)


@dataclass
class SubgraphRecord:
    """Execution record of one dispatched subgraph."""

    cubes: Tuple[str, ...]
    target: str
    duration_s: float
    tuples_written: int
    versions: Dict[str, int] = field(default_factory=dict)


@dataclass
class RunRecord:
    """One determination → translation → dispatch cycle."""

    run_id: int
    trigger: Tuple[str, ...]  # changed elementary cubes
    affected: Tuple[str, ...]  # derived cubes recomputed, in order
    subgraphs: List[SubgraphRecord] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    determination_s: float = 0.0
    translation_s: float = 0.0
    # dispatch schedule shape: dependency waves over the subgraphs
    waves: int = 0
    max_wave_width: int = 0
    # chase kernel decisions: target tgds run on columnar kernels vs.
    # fallen back to the tuple-at-a-time path during this run
    vectorized_tgds: int = 0
    fallback_tgds: int = 0
    # failure state: set when the run raised during dispatch (the engine
    # closes the record before re-raising, so duration stays meaningful)
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def duration_s(self) -> float:
        """Wall time of the run; 0.0 while the run is still open.

        A record abandoned before :meth:`RunLog.close` has
        ``finished_at == 0.0``; the raw difference would be a large
        negative number, so the duration is clamped to zero instead.
        """
        if not self.finished_at:
            return 0.0
        return max(0.0, self.finished_at - self.started_at)

    @property
    def finished(self) -> bool:
        return bool(self.finished_at)

    @property
    def execution_s(self) -> float:
        return sum(s.duration_s for s in self.subgraphs)

    def summary(self) -> str:
        state = ""
        if self.failed:
            state = f" FAILED ({self.error})"
        elif not self.finished:
            state = " UNFINISHED"
        lines = [
            f"run {self.run_id}{state}: trigger={list(self.trigger)} "
            f"affected={len(self.affected)} cubes in {len(self.subgraphs)} "
            f"subgraphs, {self.duration_s:.3f}s total "
            f"(determination {self.determination_s * 1000:.1f}ms, "
            f"translation {self.translation_s * 1000:.1f}ms, "
            f"chase kernels {self.vectorized_tgds} vectorized / "
            f"{self.fallback_tgds} fallback)"
        ]
        for record in self.subgraphs:
            lines.append(
                f"  [{record.target}] {', '.join(record.cubes)}: "
                f"{record.tuples_written} tuples in {record.duration_s:.3f}s"
            )
        return "\n".join(lines)


class RunLog:
    """Ordered log of all runs of an engine instance."""

    def __init__(self):
        self._runs: List[RunRecord] = []

    def open(self, trigger, affected) -> RunRecord:
        record = RunRecord(
            run_id=next(_run_counter),
            trigger=tuple(trigger),
            affected=tuple(affected),
            started_at=time.perf_counter(),
        )
        self._runs.append(record)
        return record

    def close(self, record: RunRecord) -> RunRecord:
        record.finished_at = time.perf_counter()
        return record

    @property
    def runs(self) -> List[RunRecord]:
        return list(self._runs)

    def last(self) -> Optional[RunRecord]:
        return self._runs[-1] if self._runs else None

    def __len__(self) -> int:
        return len(self._runs)
