"""Deterministic, seeded fault injection for dispatch testing.

A :class:`FaultPlan` decides — purely as a function of ``(seed, target,
subgraph cubes, attempt index)`` — whether a given subgraph execution
attempt should raise a :class:`~repro.errors.TransientBackendError`,
raise a :class:`~repro.errors.PermanentBackendError`, or be delayed.
Because the decision is a stable hash rather than a draw from a shared
RNG stream, the *same* faults fire no matter how many worker threads
dispatch the waves or in what order subgraphs are scheduled — the
property the determinism tests (``--jobs 1`` vs ``--jobs 4``) rely on.

Plans come from three places:

* tests construct :class:`FaultRule`/:class:`FaultPlan` directly;
* the CLI parses ``--inject-faults SPEC`` via :func:`parse_fault_spec`
  (grammar below);
* the CI chaos leg enables a process-wide plan through
  :func:`enable_chaos`, which the dispatcher consults whenever the
  caller did not pass an explicit plan — the whole tier-1 suite then
  runs with transient faults firing and must still pass.

Spec grammar (rules separated by ``;``)::

    SPEC  := RULE [ ";" RULE ]...
    RULE  := TARGET ":" KIND [ ":" OPT ]...
    TARGET:= backend name | "*"
    KIND  := "transient" | "permanent" | "delay" | "kill" | "hang"
    OPT   := "p=" FLOAT      probability per attempt   (default 1.0)
           | "n=" INT        fire only on the first N attempts
           | "after=" INT    fire only from attempt N on (0-based)
           | "delay=" FLOAT  seconds to sleep (kinds "delay"/"hang";
                             defaults 0.05 / 30.0)
           | "cubes=" A+B    only for subgraphs computing these cubes

Examples::

    *:transient:p=0.3            # 30% of attempts fail transiently
    sql:permanent                # the SQL backend is down for good
    r:transient:n=2              # first two attempts fail, then recover
    chase:delay:delay=0.2:p=0.5  # half the chase runs stall 200ms
    *:kill:p=0.4                 # SIGKILL the process at random points
    chase:hang:delay=60:n=1      # one worker wedges for 60s

The process-level kinds back the crash-recovery and shard-supervision
harnesses: ``kill`` sends the *current process* an uncatchable SIGKILL
(the crash-chaos tests run ``exl run`` in a subprocess and let the plan
kill it mid-run; the shard pool delivers it inside forked workers), and
``hang`` sleeps long enough to trip the shard supervisor's timeout.
Callers that must not die — the dispatcher's parent-side shard hook, for
instance — pass ``kinds=`` to :meth:`FaultPlan.apply` to restrict which
kinds may fire at that site.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import (
    EngineError,
    PermanentBackendError,
    TransientBackendError,
)

__all__ = [
    "ERROR_KINDS",
    "FaultRule",
    "FaultPlan",
    "FaultyBackend",
    "parse_fault_spec",
    "enable_chaos",
    "disable_chaos",
    "chaos_plan",
    "chaos_retries",
    "chaos_backoff_s",
]

TRANSIENT = "transient"
PERMANENT = "permanent"
DELAY = "delay"
KILL = "kill"  # SIGKILL the current process — uncatchable, for crash tests
HANG = "hang"  # wedge the current thread long enough to trip supervision
_KINDS = (TRANSIENT, PERMANENT, DELAY, KILL, HANG)

#: the in-process kinds — safe to deliver anywhere (they raise or sleep
#: briefly); the complement, (KILL, HANG), only belongs in expendable
#: processes such as forked shard workers or subprocess harness runs
ERROR_KINDS = (TRANSIENT, PERMANENT, DELAY)


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *who* it hits, *what* it does, *when*."""

    target: str = "*"  # backend name, or "*" for every backend
    kind: str = TRANSIENT
    probability: float = 1.0  # per-attempt firing probability
    first_n: Optional[int] = None  # only attempts 0..n-1
    after: int = 0  # only attempts >= after
    delay_s: float = 0.05  # sleep length for kind "delay"
    cubes: Optional[Tuple[str, ...]] = None  # restrict to these subgraph cubes

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise EngineError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise EngineError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )

    def matches(self, target: str, cubes: Tuple[str, ...], attempt: int) -> bool:
        if self.target != "*" and self.target != target:
            return False
        if self.cubes is not None and not (set(self.cubes) & set(cubes)):
            return False
        if attempt < self.after:
            return False
        if self.first_n is not None and attempt >= self.after + self.first_n:
            return False
        return True


def _stable_unit(seed: int, *parts: object) -> float:
    """A deterministic uniform draw in [0, 1) from a stable hash.

    Thread-schedule independent: the value depends only on the seed and
    the identifying parts, never on call order, so parallel and
    sequential dispatch see identical faults.
    """
    text = "\x1f".join([str(seed), *map(str, parts)])
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class FaultPlan:
    """A seeded set of fault rules applied to subgraph execution attempts."""

    def __init__(self, rules: Iterable[FaultRule] = (), seed: int = 0):
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        #: injection counts by kind, for assertions and reporting
        self.injected: Dict[str, int] = {kind: 0 for kind in _KINDS}
        self._lock = threading.Lock()

    def would_fire(
        self, target: str, cubes: Tuple[str, ...], attempt: int
    ) -> List[FaultRule]:
        """The rules that fire for this attempt (no side effects)."""
        fired = []
        for index, rule in enumerate(self.rules):
            if not rule.matches(target, tuple(cubes), attempt):
                continue
            draw = _stable_unit(
                self.seed, index, target, "+".join(cubes), attempt
            )
            if draw < rule.probability:
                fired.append(rule)
        return fired

    def apply(
        self,
        target: str,
        cubes: Tuple[str, ...],
        attempt: int,
        metrics=None,
        kinds: Optional[Tuple[str, ...]] = None,
    ) -> None:
        """Inject whatever the plan dictates for this attempt.

        Delays and hangs sleep; ``kill`` SIGKILLs the current process;
        transient/permanent rules raise (permanent wins if both fire).
        ``kinds`` restricts which rule kinds may fire at this call site
        (``None`` means all) — the parent-side dispatch path filters to
        :data:`ERROR_KINDS` so process-level faults only ever land in
        expendable processes.  ``metrics`` receives ``faults.injected``
        plus a per-kind counter for every fault that fires.
        """
        fired = self.would_fire(target, tuple(cubes), attempt)
        if kinds is not None:
            fired = [rule for rule in fired if rule.kind in kinds]
        raise_kind = None
        for rule in fired:
            with self._lock:
                self.injected[rule.kind] += 1
            if metrics is not None:
                metrics.inc("faults.injected")
                metrics.inc(f"faults.injected.kind:{rule.kind}")
            if rule.kind == KILL:
                os.kill(os.getpid(), signal.SIGKILL)
            elif rule.kind in (DELAY, HANG):
                time.sleep(rule.delay_s)
            elif rule.kind == PERMANENT:
                raise_kind = PERMANENT
            elif raise_kind is None:
                raise_kind = TRANSIENT
        label = f"{target}:{'+'.join(cubes)} attempt {attempt}"
        if raise_kind == PERMANENT:
            raise PermanentBackendError(f"injected permanent fault on {label}")
        if raise_kind == TRANSIENT:
            raise TransientBackendError(f"injected transient fault on {label}")

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def wrap(self, backend) -> "FaultyBackend":
        """A backend whose ``run_mapping`` consults this plan per call."""
        return FaultyBackend(backend, self)


class FaultyBackend:
    """Wraps any backend; each ``run_mapping`` call is one attempt.

    The attempt index is the per-(target, cubes) call count, so "fail
    the first N calls then recover" rules behave deterministically even
    when several wrapped backends run concurrently.
    """

    def __init__(self, inner, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.name = inner.name
        self._calls: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self._calls_lock = threading.Lock()

    def run_mapping(self, mapping, inputs, wanted=None, check=None):
        cubes = tuple(wanted) if wanted is not None else ()
        key = (self.name, cubes)
        with self._calls_lock:
            attempt = self._calls.get(key, 0)
            self._calls[key] = attempt + 1
        self.plan.apply(self.name, cubes, attempt)
        return self.inner.run_mapping(mapping, inputs, wanted=wanted, check=check)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def parse_fault_spec(spec: str, seed: int = 0) -> FaultPlan:
    """Parse an ``--inject-faults`` spec string into a :class:`FaultPlan`."""
    rules = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2:
            raise EngineError(
                f"bad fault rule {chunk!r}: expected TARGET:KIND[:opt=value...]"
            )
        target, kind = parts[0].strip(), parts[1].strip()
        options: Dict[str, object] = {}
        for opt in parts[2:]:
            if "=" not in opt:
                raise EngineError(f"bad fault option {opt!r} in rule {chunk!r}")
            key, _, value = opt.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "p":
                options["probability"] = float(value)
            elif key == "n":
                options["first_n"] = int(value)
            elif key == "after":
                options["after"] = int(value)
            elif key == "delay":
                options["delay_s"] = float(value)
            elif key == "cubes":
                options["cubes"] = tuple(value.split("+"))
            else:
                raise EngineError(
                    f"unknown fault option {key!r} in rule {chunk!r}"
                )
        if kind == HANG and "delay_s" not in options:
            options["delay_s"] = 30.0  # long enough to trip any supervisor
        rules.append(FaultRule(target=target, kind=kind, **options))
    if not rules:
        raise EngineError(f"fault spec {spec!r} contains no rules")
    return FaultPlan(rules, seed=seed)


# -- chaos mode: a process-wide default plan -----------------------------------
#
# When enabled (the CI fault-injection leg, or any pytest run with
# ``--inject-faults``), every Dispatcher built without an explicit
# fault plan picks this one up, together with enough retries to
# guarantee recovery from bounded transient rules.


@dataclass
class _ChaosConfig:
    plan: FaultPlan
    retries: int = 3
    backoff_s: float = 0.002  # keep chaos suites fast


_chaos: Optional[_ChaosConfig] = None


def enable_chaos(
    spec: str, seed: int = 0, retries: int = 3, backoff_s: float = 0.002
) -> FaultPlan:
    """Install a process-wide fault plan (see module docstring)."""
    global _chaos
    plan = parse_fault_spec(spec, seed=seed)
    _chaos = _ChaosConfig(plan=plan, retries=retries, backoff_s=backoff_s)
    return plan


def disable_chaos() -> None:
    global _chaos
    _chaos = None


def chaos_plan() -> Optional[FaultPlan]:
    return _chaos.plan if _chaos is not None else None


def chaos_retries() -> Optional[int]:
    return _chaos.retries if _chaos is not None else None


def chaos_backoff_s() -> Optional[float]:
    return _chaos.backoff_s if _chaos is not None else None
