"""The dataframe engine backing the R translation target."""

from .frame import DataFrame

__all__ = ["DataFrame"]
