"""A from-scratch dataframe engine — the R ``data.frame`` substitute.

Columns are named lists of equal length.  The operations mirror the
ones the paper's R listings use: ``merge`` (inner join on key columns),
element-wise column arithmetic, column addition/removal, group-by
aggregation, sorting, and whole-frame transforms (for ``stl``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import FrameError
from ..model.time import TimePoint

__all__ = ["DataFrame"]


class DataFrame:
    """An ordered collection of named, equal-length columns."""

    def __init__(self, columns: Optional[Dict[str, Sequence[Any]]] = None):
        self._data: Dict[str, List[Any]] = {}
        if columns:
            length = None
            for name, values in columns.items():
                values = list(values)
                if length is None:
                    length = len(values)
                elif len(values) != length:
                    raise FrameError(
                        f"column {name!r} has length {len(values)}, expected {length}"
                    )
                self._data[name] = values

    # -- construction -------------------------------------------------------
    @classmethod
    def from_rows(cls, names: Sequence[str], rows: Iterable[Sequence[Any]]) -> "DataFrame":
        columns: Dict[str, List[Any]] = {name: [] for name in names}
        for row in rows:
            if len(row) != len(names):
                raise FrameError(f"row {row!r} does not match columns {names}")
            for name, value in zip(names, row):
                columns[name].append(value)
        return cls(columns)

    # -- basics -----------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        return list(self._data)

    @property
    def nrow(self) -> int:
        if not self._data:
            return 0
        return len(next(iter(self._data.values())))

    def column(self, name: str) -> List[Any]:
        try:
            return self._data[name]
        except KeyError:
            raise FrameError(f"no column {name!r} (have {self.names})") from None

    def __getitem__(self, name: str) -> List[Any]:
        return self.column(name)

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def rows(self) -> List[Tuple[Any, ...]]:
        names = self.names
        return [
            tuple(self._data[n][i] for n in names) for i in range(self.nrow)
        ]

    def copy(self) -> "DataFrame":
        return DataFrame({n: list(v) for n, v in self._data.items()})

    # -- column manipulation ---------------------------------------------------
    def _check_length(self, name: str, values: List[Any]) -> None:
        """Every mutation validates: columns stay equal-length.

        The first column of an empty frame establishes the row count;
        anything after that must match it exactly.
        """
        if self._data and len(values) != self.nrow:
            raise FrameError(
                f"column {name!r} has length {len(values)}, frame has "
                f"{self.nrow} rows"
            )

    def assign(self, name: str, values: Sequence[Any]) -> "DataFrame":
        """A new frame with column ``name`` set to ``values``."""
        values = list(values)
        self._check_length(name, values)
        out = self.copy()
        out._data[name] = values
        return out

    def add_column(self, name: str, values: Sequence[Any]) -> "DataFrame":
        """Add or replace a column *in place* (R's ``df$x <- …``).

        Raises :class:`FrameError` on a length mismatch — including on
        frames built from an empty dict that already gained columns.
        Returns ``self`` for chaining.
        """
        values = list(values)
        self._check_length(name, values)
        self._data[name] = values
        return self

    def select(self, names: Sequence[str]) -> "DataFrame":
        return DataFrame({n: list(self.column(n)) for n in names})

    def drop(self, names: Sequence[str]) -> "DataFrame":
        doomed = set(names)
        missing = doomed - set(self._data)
        if missing:
            raise FrameError(f"cannot drop missing columns {sorted(missing)}")
        return DataFrame(
            {n: list(v) for n, v in self._data.items() if n not in doomed}
        )

    def rename(self, mapping: Dict[str, str]) -> "DataFrame":
        out: Dict[str, List[Any]] = {}
        for name, values in self._data.items():
            out[mapping.get(name, name)] = list(values)
        if len(out) != len(self._data):
            raise FrameError(f"rename would collide columns: {mapping}")
        return DataFrame(out)

    # -- row manipulation -----------------------------------------------------
    def filter_rows(self, mask: Sequence[bool]) -> "DataFrame":
        if len(mask) != self.nrow:
            raise FrameError("mask length does not match row count")
        return DataFrame(
            {
                n: [v for v, keep in zip(values, mask) if keep]
                for n, values in self._data.items()
            }
        )

    def sort_by(self, names: Sequence[str]) -> "DataFrame":
        order = sorted(range(self.nrow), key=lambda i: _key(self, names, i))
        return DataFrame(
            {n: [values[i] for i in order] for n, values in self._data.items()}
        )

    # -- relational operations -----------------------------------------------------
    def merge(self, other: "DataFrame", by: Sequence[str]) -> "DataFrame":
        """Inner join on the ``by`` columns — R's ``merge(x, y, by=…)``.

        Key columns appear once; non-key columns of both sides follow
        (left first).  Colliding non-key names get ``.x``/``.y``
        suffixes like R.
        """
        for name in by:
            if name not in self or name not in other:
                raise FrameError(f"merge key {name!r} missing from an operand")
        left_extra = [n for n in self.names if n not in by]
        right_extra = [n for n in other.names if n not in by]
        renames: Dict[str, Tuple[str, str]] = {}
        for name in set(left_extra) & set(right_extra):
            renames[name] = (f"{name}.x", f"{name}.y")
        out_names = (
            list(by)
            + [renames.get(n, (n, n))[0] for n in left_extra]
            + [renames.get(n, (n, n))[1] for n in right_extra]
        )
        index: Dict[Tuple, List[int]] = {}
        for j in range(other.nrow):
            key = tuple(other.column(n)[j] for n in by)
            index.setdefault(key, []).append(j)
        rows = []
        for i in range(self.nrow):
            key = tuple(self.column(n)[i] for n in by)
            for j in index.get(key, ()):
                rows.append(
                    key
                    + tuple(self.column(n)[i] for n in left_extra)
                    + tuple(other.column(n)[j] for n in right_extra)
                )
        return DataFrame.from_rows(out_names, rows)

    def outer_combine(
        self,
        other: "DataFrame",
        by: Sequence[str],
        left_value: str,
        right_value: str,
        combine: Callable[[float, float], float],
        default: float,
        out_name: str,
    ) -> "DataFrame":
        """Full-outer element-wise combine on key columns.

        The result has the ``by`` columns plus ``out_name``; a key tuple
        present on only one side contributes ``default`` for the other
        (R idiom: ``merge(all=TRUE)`` + NA replacement).
        """
        left_map: Dict[Tuple, float] = {}
        for i in range(self.nrow):
            key = tuple(self.column(n)[i] for n in by)
            left_map[key] = self.column(left_value)[i]
        right_map: Dict[Tuple, float] = {}
        for j in range(other.nrow):
            key = tuple(other.column(n)[j] for n in by)
            right_map[key] = other.column(right_value)[j]
        rows = []
        for key in left_map.keys() | right_map.keys():
            value = combine(left_map.get(key, default), right_map.get(key, default))
            rows.append(key + (value,))
        return DataFrame.from_rows(list(by) + [out_name], rows)

    def group_aggregate(
        self,
        by: Sequence[str],
        value_column: str,
        func: Callable[[List[float]], float],
        out_name: Optional[str] = None,
        key_funcs: Optional[Dict[str, Callable[[Any], Any]]] = None,
    ) -> "DataFrame":
        """Group by (optionally transformed) key columns and aggregate.

        ``key_funcs`` maps a key column to a transform applied before
        grouping (the R idiom ``aggregate(v ~ quarter(d) + r, …)``).
        """
        key_funcs = key_funcs or {}
        groups: Dict[Tuple, List[float]] = {}
        for i in range(self.nrow):
            key = tuple(
                key_funcs.get(n, _identity)(self.column(n)[i]) for n in by
            )
            groups.setdefault(key, []).append(self.column(value_column)[i])
        out_name = out_name or value_column
        rows = [key + (func(bag),) for key, bag in groups.items()]
        return DataFrame.from_rows(list(by) + [out_name], rows)

    def apply_table(
        self, func: Callable[["DataFrame"], "DataFrame"]
    ) -> "DataFrame":
        """Whole-frame transform (the ``stl`` black-box pattern)."""
        result = func(self)
        if not isinstance(result, DataFrame):
            raise FrameError("table transform must return a DataFrame")
        return result

    # -- comparison / display -------------------------------------------------------
    def equals(self, other: "DataFrame") -> bool:
        return self.names == other.names and sorted(
            self.rows(), key=_row_key
        ) == sorted(other.rows(), key=_row_key)

    def head(self, n: int = 6) -> str:
        names = self.names
        lines = ["\t".join(names)]
        for row in self.rows()[:n]:
            lines.append("\t".join(str(v) for v in row))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"DataFrame({self.nrow} rows x {len(self._data)} cols: {self.names})"


def _identity(value: Any) -> Any:
    return value


def _sortable(value: Any):
    if value is None:
        return (0, "")
    if isinstance(value, TimePoint):
        return (1, value.freq.value, value.ordinal)
    if isinstance(value, str):
        return (2, value)
    return (1, "", value)


def _key(frame: DataFrame, names: Sequence[str], i: int):
    return tuple(_sortable(frame.column(n)[i]) for n in names)


def _row_key(row: Tuple):
    return tuple(_sortable(v) for v in row)
