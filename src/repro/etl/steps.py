"""ETL steps — the taxonomy of Section 5.3.

Each step transforms row streams: *data source* steps feed rows in,
*merge* steps join streams on dimensions, *calculation* steps compute
measures, *aggregation* steps roll up, *table function* steps apply
black-box whole-stream operators, and *output* steps write back.

Calculator formulas are EXL scalar expressions over field names
(``p * g``, ``ln(v)``), evaluated with the operator registry — the
"user defined algebraic or statistical calculations" of the paper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import EtlError, OperatorError
from ..exl.ast import BinOp, Call, CubeRef, Expr, Number, String, UnaryOp
from ..exl.operators import OperatorRegistry, OpKind, default_registry
from ..exl.parser import parse_expression
from ..model.time import TimePoint
from ..stats.aggregates import get_aggregate
from .store import Row, RowStore

__all__ = [
    "Step",
    "TableInput",
    "MergeJoin",
    "OuterCombine",
    "Calculator",
    "Aggregate",
    "TableFunctionStep",
    "FilterStep",
    "SortStep",
    "TableOutput",
    "evaluate_formula",
]


class Step:
    """Base class: a named node of an ETL flow."""

    #: how many incoming hops the step expects
    n_inputs: int = 1

    def __init__(self, name: str):
        self.name = name

    def run(self, inputs: List[List[Row]], store: RowStore) -> List[Row]:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """Step metadata (the Kettle-catalog view of the step)."""
        return {"name": self.name, "type": type(self).__name__}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class TableInput(Step):
    """Data source step: reads a store table into the stream."""

    n_inputs = 0

    def __init__(self, name: str, table: str):
        super().__init__(name)
        self.table = table

    def run(self, inputs, store: RowStore) -> List[Row]:
        return [dict(row) for row in store.rows(self.table)]

    def describe(self):
        return {**super().describe(), "table": self.table}


class MergeJoin(Step):
    """Inner join of two streams on key fields (hash implementation)."""

    n_inputs = 2

    def __init__(self, name: str, keys: Sequence[str]):
        super().__init__(name)
        self.keys = list(keys)

    def run(self, inputs, store: RowStore) -> List[Row]:
        if len(inputs) != 2:
            raise EtlError(f"merge step {self.name} needs exactly 2 inputs")
        left, right = inputs
        index: Dict[Tuple, List[Row]] = {}
        for row in right:
            key = tuple(row.get(k) for k in self.keys)
            index.setdefault(key, []).append(row)
        out: List[Row] = []
        for row in left:
            key = tuple(row.get(k) for k in self.keys)
            for match in index.get(key, ()):
                merged = dict(match)
                merged.update(row)  # left wins on collisions
                out.append(merged)
        return out

    def describe(self):
        return {**super().describe(), "keys": list(self.keys)}


class OuterCombine(Step):
    """Default-valued combine of two streams on key fields.

    Emits one row per key tuple in the *union* of both streams, with
    ``out_field = left <op> right`` and the default standing in for a
    missing side — the ETL form of the outer vectorial operators.
    """

    n_inputs = 2

    def __init__(
        self,
        name: str,
        keys: Sequence[str],
        left_value: str,
        right_value: str,
        op: str,
        default: float,
        out_field: str,
    ):
        super().__init__(name)
        self.keys = list(keys)
        self.left_value = left_value
        self.right_value = right_value
        self.op = op
        self.default = float(default)
        self.out_field = out_field
        if op not in ("+", "-", "*"):
            raise EtlError(f"unsupported outer combine operator {op!r}")

    def run(self, inputs, store: RowStore) -> List[Row]:
        if len(inputs) != 2:
            raise EtlError(f"outer combine step {self.name} needs 2 inputs")
        left_rows, right_rows = inputs
        left: Dict[Tuple, float] = {}
        for row in left_rows:
            left[tuple(row.get(k) for k in self.keys)] = row[self.left_value]
        right: Dict[Tuple, float] = {}
        for row in right_rows:
            right[tuple(row.get(k) for k in self.keys)] = row[self.right_value]
        out: List[Row] = []
        for key in left.keys() | right.keys():
            a = left.get(key, self.default)
            b = right.get(key, self.default)
            value = a + b if self.op == "+" else a - b if self.op == "-" else a * b
            row = dict(zip(self.keys, key))
            row[self.out_field] = value
            out.append(row)
        return out

    def describe(self):
        return {
            **super().describe(),
            "keys": list(self.keys),
            "left_value": self.left_value,
            "right_value": self.right_value,
            "op": self.op,
            "default": self.default,
            "out_field": self.out_field,
        }


class Calculator(Step):
    """Adds a field computed from an EXL scalar formula over fields."""

    def __init__(
        self,
        name: str,
        field: str,
        formula: str,
        drop: Sequence[str] = (),
        registry: Optional[OperatorRegistry] = None,
    ):
        super().__init__(name)
        self.field = field
        self.formula = formula
        self.drop = list(drop)
        self._registry = registry or default_registry()
        self._expr = parse_expression(formula)

    def run(self, inputs, store: RowStore) -> List[Row]:
        (rows,) = inputs
        out = []
        for row in rows:
            value = evaluate_formula(self._expr, row, self._registry)
            updated = {k: v for k, v in row.items() if k not in self.drop}
            updated[self.field] = value
            out.append(updated)
        return out

    def describe(self):
        return {
            **super().describe(),
            "field": self.field,
            "formula": self.formula,
            "drop": list(self.drop),
        }


class Aggregate(Step):
    """Group-by roll-up with optional key transforms/renames.

    ``group`` items are ``(source_field, out_field, transform_name)``
    where the transform is a dimension function (``quarter``) or None.
    """

    def __init__(
        self,
        name: str,
        group: Sequence[Tuple[str, str, Optional[str]]],
        value_field: str,
        func: str,
        out_field: Optional[str] = None,
        registry: Optional[OperatorRegistry] = None,
    ):
        super().__init__(name)
        self.group = [tuple(g) for g in group]
        self.value_field = value_field
        self.func = func
        self.out_field = out_field or value_field
        self._registry = registry or default_registry()
        self._agg = get_aggregate(func)

    def run(self, inputs, store: RowStore) -> List[Row]:
        (rows,) = inputs
        groups: Dict[Tuple, List[float]] = {}
        for row in rows:
            key = []
            for source, _out, transform in self.group:
                value = row.get(source)
                if transform is not None:
                    value = self._registry.get(transform).impl(value)
                key.append(value)
            groups.setdefault(tuple(key), []).append(row[self.value_field])
        out = []
        for key, bag in groups.items():
            row = {
                out_field: part
                for (_src, out_field, _t), part in zip(self.group, key)
            }
            row[self.out_field] = self._agg(bag)
            out.append(row)
        return out

    def describe(self):
        return {
            **super().describe(),
            "group": [list(g) for g in self.group],
            "value_field": self.value_field,
            "func": self.func,
            "out_field": self.out_field,
        }


class TableFunctionStep(Step):
    """Whole-stream black box (user-defined step in Kettle terms).

    Buffers the stream, sorts by the time field, applies an EXL table
    function and re-emits ``(time_field, out_field)`` rows.
    """

    def __init__(
        self,
        name: str,
        function: str,
        time_field: str,
        value_field: str,
        out_field: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        registry: Optional[OperatorRegistry] = None,
    ):
        super().__init__(name)
        self.function = function
        self.time_field = time_field
        self.value_field = value_field
        self.out_field = out_field or value_field
        self.params = dict(params or {})
        self._registry = registry or default_registry()
        spec = self._registry.get(function)
        if spec.kind is not OpKind.TABLE_FUNCTION:
            raise EtlError(f"{function} is not a table function")
        self._impl = spec.impl

    def run(self, inputs, store: RowStore) -> List[Row]:
        (rows,) = inputs
        series = sorted(
            ((row[self.time_field], row[self.value_field]) for row in rows),
            key=lambda pair: pair[0].ordinal
            if isinstance(pair[0], TimePoint)
            else pair[0],
        )
        result = self._impl(series, self.params)
        return [
            {self.time_field: point, self.out_field: float(value)}
            for point, value in result
        ]

    def describe(self):
        return {
            **super().describe(),
            "function": self.function,
            "time_field": self.time_field,
            "value_field": self.value_field,
            "out_field": self.out_field,
            "params": dict(self.params),
        }


class FilterStep(Step):
    """Keeps rows whose EXL boolean-ish formula is non-zero."""

    def __init__(self, name: str, formula: str, registry: Optional[OperatorRegistry] = None):
        super().__init__(name)
        self.formula = formula
        self._registry = registry or default_registry()
        self._expr = parse_expression(formula)

    def run(self, inputs, store: RowStore) -> List[Row]:
        (rows,) = inputs
        return [
            row
            for row in rows
            if evaluate_formula(self._expr, row, self._registry)
        ]

    def describe(self):
        return {**super().describe(), "formula": self.formula}


class SortStep(Step):
    """Sorts the stream by the given fields."""

    def __init__(self, name: str, fields: Sequence[str]):
        super().__init__(name)
        self.fields = list(fields)

    def run(self, inputs, store: RowStore) -> List[Row]:
        (rows,) = inputs

        def key(row: Row):
            out = []
            for field in self.fields:
                value = row.get(field)
                if isinstance(value, TimePoint):
                    out.append((1, value.freq.value, value.ordinal))
                elif isinstance(value, str):
                    out.append((2, value, 0))
                else:
                    out.append((1, "", value))
            return tuple(out)

        return sorted(rows, key=key)

    def describe(self):
        return {**super().describe(), "fields": list(self.fields)}


class TableOutput(Step):
    """Output step: writes the stream into a store table."""

    def __init__(self, name: str, table: str, fields: Sequence[str]):
        super().__init__(name)
        self.table = table
        self.fields = list(fields)

    def run(self, inputs, store: RowStore) -> List[Row]:
        (rows,) = inputs
        store.ensure(self.table, self.fields)
        store.write(self.table, rows)
        return rows

    def describe(self):
        return {**super().describe(), "table": self.table, "fields": list(self.fields)}


def evaluate_formula(expr: Expr, row: Row, registry: OperatorRegistry) -> Any:
    """Evaluate an EXL scalar expression over a row's fields."""
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, String):
        return expr.value
    if isinstance(expr, CubeRef):  # a field reference in this context
        if expr.name not in row:
            raise EtlError(f"row has no field {expr.name!r} (has {sorted(row)})")
        return row[expr.name]
    if isinstance(expr, UnaryOp):
        return -evaluate_formula(expr.operand, row, registry)
    if isinstance(expr, BinOp):
        left = evaluate_formula(expr.left, row, registry)
        right = evaluate_formula(expr.right, row, registry)
        return _arith(expr.op, left, right)
    if isinstance(expr, Call):
        spec = registry.get(expr.name)
        if spec.kind not in (OpKind.SCALAR, OpKind.DIM_FUNCTION):
            raise EtlError(
                f"only scalar functions are allowed in calculator formulas, "
                f"got {expr.name}"
            )
        args = [evaluate_formula(a, row, registry) for a in expr.args]
        return spec.impl(*args)
    raise EtlError(f"unsupported formula node {type(expr).__name__}")


def _arith(op: str, left: Any, right: Any) -> Any:
    if isinstance(left, TimePoint) and isinstance(right, (int, float)):
        return left.shift(int(right)) if op == "+" else left.shift(-int(right))
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise OperatorError("division by zero in calculator step")
        return left / right
    if op == "^":
        return left**right
    raise EtlError(f"unknown operator {op!r} in a formula")
