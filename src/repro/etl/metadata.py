"""Metadata-driven flow construction.

Pentaho Data Integration "has the advantage of being completely
metadata driven"; EXLEngine integrates by "feeding the metadata catalog
of the specific tool" (Section 5.3).  This module is that integration
surface: a flow is described by a plain dictionary (JSON-shaped) and
built — or exported back — from it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import EtlError
from ..exl.operators import OperatorRegistry, default_registry
from .flow import Flow
from .steps import (
    Aggregate,
    Calculator,
    OuterCombine,
    FilterStep,
    MergeJoin,
    SortStep,
    Step,
    TableFunctionStep,
    TableInput,
    TableOutput,
)

__all__ = ["flow_from_metadata", "flow_to_metadata"]

_STEP_TYPES = {
    "TableInput",
    "MergeJoin",
    "OuterCombine",
    "Calculator",
    "Aggregate",
    "TableFunctionStep",
    "FilterStep",
    "SortStep",
    "TableOutput",
}


def flow_from_metadata(
    metadata: Dict[str, Any], registry: Optional[OperatorRegistry] = None
) -> Flow:
    """Build an executable :class:`Flow` from its metadata description.

    The metadata format is exactly what :func:`flow_to_metadata`
    (and :meth:`Flow.describe`) produce, so flows round-trip.
    """
    registry = registry or default_registry()
    flow = Flow(metadata.get("name", "flow"))
    for meta in metadata.get("steps", ()):
        flow.add(_build_step(meta, registry))
    for hop in metadata.get("hops", ()):
        flow.hop(hop["from"], hop["to"], hop.get("port", 0))
    return flow


def _build_step(meta: Dict[str, Any], registry: OperatorRegistry) -> Step:
    step_type = meta.get("type")
    name = meta.get("name")
    if not name:
        raise EtlError(f"step metadata without a name: {meta!r}")
    if step_type == "TableInput":
        return TableInput(name, meta["table"])
    if step_type == "MergeJoin":
        return MergeJoin(name, meta["keys"])
    if step_type == "OuterCombine":
        return OuterCombine(
            name,
            meta["keys"],
            meta["left_value"],
            meta["right_value"],
            meta["op"],
            meta["default"],
            meta["out_field"],
        )
    if step_type == "Calculator":
        return Calculator(
            name,
            meta["field"],
            meta["formula"],
            meta.get("drop", ()),
            registry,
        )
    if step_type == "Aggregate":
        return Aggregate(
            name,
            [tuple(g) for g in meta["group"]],
            meta["value_field"],
            meta["func"],
            meta.get("out_field"),
            registry,
        )
    if step_type == "TableFunctionStep":
        return TableFunctionStep(
            name,
            meta["function"],
            meta["time_field"],
            meta["value_field"],
            meta.get("out_field"),
            meta.get("params"),
            registry,
        )
    if step_type == "FilterStep":
        return FilterStep(name, meta["formula"], registry)
    if step_type == "SortStep":
        return SortStep(name, meta["fields"])
    if step_type == "TableOutput":
        return TableOutput(name, meta["table"], meta["fields"])
    raise EtlError(
        f"unknown step type {step_type!r} (known: {sorted(_STEP_TYPES)})"
    )


def flow_to_metadata(flow: Flow) -> Dict[str, Any]:
    """Export a flow as metadata (alias of :meth:`Flow.describe`)."""
    return flow.describe()
