"""A from-scratch streaming ETL engine (the Pentaho target of Section 5.3).

Flows are DAGs of steps (data source, merge join, calculator,
aggregate, table function, output) built directly or from metadata
dictionaries; jobs compose flows in tgd order.
"""

from .flow import Flow, FlowResult, Hop, Job
from .metadata import flow_from_metadata, flow_to_metadata
from .steps import (
    Aggregate,
    Calculator,
    FilterStep,
    OuterCombine,
    MergeJoin,
    SortStep,
    Step,
    TableFunctionStep,
    TableInput,
    TableOutput,
    evaluate_formula,
)
from .store import RowStore

__all__ = [
    "RowStore",
    "Step",
    "TableInput",
    "MergeJoin",
    "OuterCombine",
    "Calculator",
    "Aggregate",
    "TableFunctionStep",
    "FilterStep",
    "SortStep",
    "TableOutput",
    "evaluate_formula",
    "Hop",
    "Flow",
    "FlowResult",
    "Job",
    "flow_from_metadata",
    "flow_to_metadata",
]
