"""ETL flows and jobs.

A flow is a DAG of steps connected by hops; executing a flow runs the
steps in topological order, materializing each step's row stream (which
also allows fan-out).  A job is the ordered composition of flows — "all
flows are finally tailored into a more comprising job according to tgds
total order" (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..errors import EtlError
from .steps import Step
from .store import Row, RowStore

__all__ = ["Hop", "Flow", "FlowResult", "Job"]


@dataclass(frozen=True)
class Hop:
    """A directed edge between two step names.

    ``port`` orders the inputs of multi-input steps (0 = left stream of
    a merge join, 1 = right).
    """

    source: str
    target: str
    port: int = 0


class Flow:
    """A named DAG of ETL steps."""

    def __init__(self, name: str):
        self.name = name
        self._steps: Dict[str, Step] = {}
        self._hops: List[Hop] = []

    # -- construction --------------------------------------------------
    def add(self, step: Step) -> Step:
        if step.name in self._steps:
            raise EtlError(f"flow {self.name}: duplicate step {step.name}")
        self._steps[step.name] = step
        return step

    def hop(self, source: str, target: str, port: int = 0) -> None:
        for name in (source, target):
            if name not in self._steps:
                raise EtlError(f"flow {self.name}: unknown step {name!r}")
        self._hops.append(Hop(source, target, port))

    # -- introspection ----------------------------------------------------
    @property
    def steps(self) -> List[Step]:
        return list(self._steps.values())

    @property
    def hops(self) -> List[Hop]:
        return list(self._hops)

    def step(self, name: str) -> Step:
        try:
            return self._steps[name]
        except KeyError:
            raise EtlError(f"flow {self.name}: unknown step {name!r}") from None

    def topological_order(self) -> List[str]:
        incoming: Dict[str, int] = {name: 0 for name in self._steps}
        for hop in self._hops:
            incoming[hop.target] += 1
        ready = [name for name, count in incoming.items() if count == 0]
        order: List[str] = []
        remaining = dict(incoming)
        while ready:
            name = ready.pop()
            order.append(name)
            for hop in self._hops:
                if hop.source == name:
                    remaining[hop.target] -= 1
                    if remaining[hop.target] == 0:
                        ready.append(hop.target)
        if len(order) != len(self._steps):
            raise EtlError(f"flow {self.name} contains a cycle")
        return order

    def describe(self) -> Dict[str, Any]:
        """Metadata view of the flow (steps + hops), Kettle-catalog style."""
        return {
            "name": self.name,
            "steps": [self._steps[n].describe() for n in self.topological_order()],
            "hops": [
                {"from": h.source, "to": h.target, "port": h.port}
                for h in self._hops
            ],
        }

    # -- execution --------------------------------------------------------------
    def run(self, store: RowStore) -> Dict[str, List[Row]]:
        """Execute the flow; returns each step's materialized output."""
        self._validate_inputs()
        outputs: Dict[str, List[Row]] = {}
        for name in self.topological_order():
            step = self._steps[name]
            feeding = sorted(
                (h for h in self._hops if h.target == name),
                key=lambda h: h.port,
            )
            inputs = [outputs[h.source] for h in feeding]
            outputs[name] = step.run(inputs, store)
        return outputs

    def _validate_inputs(self) -> None:
        for name, step in self._steps.items():
            n = sum(1 for h in self._hops if h.target == name)
            if n != step.n_inputs:
                raise EtlError(
                    f"flow {self.name}: step {name} has {n} inputs, needs "
                    f"{step.n_inputs}"
                )

    def __repr__(self) -> str:
        return f"Flow({self.name}, {len(self._steps)} steps)"


@dataclass
class FlowResult:
    flow: str
    rows_out: int


class Job:
    """An ordered sequence of flows sharing one store."""

    def __init__(self, name: str, flows: Optional[Sequence[Flow]] = None):
        self.name = name
        self.flows: List[Flow] = list(flows or [])

    def add(self, flow: Flow) -> Flow:
        self.flows.append(flow)
        return flow

    def run(self, store: RowStore) -> List[FlowResult]:
        results = []
        for flow in self.flows:
            outputs = flow.run(store)
            terminal = max(outputs.values(), key=len, default=[])
            results.append(FlowResult(flow.name, len(terminal)))
        return results

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "flows": [f.describe() for f in self.flows]}
