"""Row storage the ETL engine reads from and writes to.

Pentaho flows read/write database tables; our :class:`RowStore` plays
that role, with converters to and from cubes so the dispatcher can move
data between engines.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from ..errors import EtlError
from ..model.cube import Cube, CubeSchema

__all__ = ["RowStore"]

Row = Dict[str, Any]


class RowStore:
    """Named tables of dict-rows with a declared field order."""

    def __init__(self):
        self._fields: Dict[str, List[str]] = {}
        self._rows: Dict[str, List[Row]] = {}

    def create(self, name: str, fields: Sequence[str]) -> None:
        if name in self._fields:
            raise EtlError(f"table {name} already exists in the store")
        self._fields[name] = list(fields)
        self._rows[name] = []

    def ensure(self, name: str, fields: Sequence[str]) -> None:
        if name not in self._fields:
            self.create(name, fields)

    def fields(self, name: str) -> List[str]:
        try:
            return self._fields[name]
        except KeyError:
            raise EtlError(f"no table {name!r} in the store") from None

    def rows(self, name: str) -> List[Row]:
        if name not in self._rows:
            raise EtlError(f"no table {name!r} in the store")
        return self._rows[name]

    def write(self, name: str, rows: Iterable[Row]) -> int:
        if name not in self._rows:
            raise EtlError(f"no table {name!r} in the store")
        fields = self._fields[name]
        count = 0
        for row in rows:
            missing = [f for f in fields if f not in row]
            if missing:
                raise EtlError(f"row for {name} is missing fields {missing}")
            self._rows[name].append({f: row[f] for f in fields})
            count += 1
        return count

    def truncate(self, name: str) -> None:
        self.rows(name).clear()

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def names(self) -> List[str]:
        return list(self._fields)

    # -- cube bridging -----------------------------------------------------
    def load_cube(self, cube: Cube) -> None:
        """Create (or replace) a table holding a cube's tuples."""
        name = cube.schema.name
        fields = list(cube.schema.columns)
        if name in self._fields:
            self._fields[name] = fields
            self._rows[name] = []
        else:
            self.create(name, fields)
        self.write(
            name, ({f: v for f, v in zip(fields, row)} for row in cube.to_rows())
        )

    def to_cube(self, schema: CubeSchema) -> Cube:
        """Read a table back as a cube (fields must match the schema)."""
        fields = self.fields(schema.name)
        expected = list(schema.columns)
        if fields != expected:
            raise EtlError(
                f"table {schema.name} fields {fields} do not match cube "
                f"columns {expected}"
            )
        cube = Cube(schema)
        for row in self.rows(schema.name):
            cube.set(tuple(row[f] for f in fields[:-1]), row[fields[-1]])
        return cube
