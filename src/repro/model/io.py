"""CSV serialization of cubes and textual dimension-type specs.

Cubes exchange with the outside world as CSV files whose header is the
dimension names followed by the measure name; time values use the
canonical :class:`TimePoint` string forms (``2020-03-15``, ``2020M03``,
``2020Q1``, ``2020``, ``2020W07``).

Dimension types also have a compact textual spec used by project files
and the CLI: ``time:D`` / ``time:W`` / ``time:M`` / ``time:Q`` /
``time:A`` for time axes, ``string`` and ``integer`` for the rest.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, TextIO, Union

from ..errors import ModelError
from .cube import Cube, CubeSchema, Dimension
from .time import Frequency, parse_timepoint
from .types import INTEGER, STRING, TIME, DimKind, DimType

__all__ = [
    "parse_dimtype",
    "format_dimtype",
    "parse_dim_value",
    "write_cube_csv",
    "read_cube_csv",
    "cube_to_csv_text",
    "cube_from_csv_text",
]


def parse_dimtype(spec: str) -> DimType:
    """Parse a textual dimension type: ``time:<freq>``, ``string``, ``integer``."""
    text = spec.strip().lower()
    if text == "string":
        return STRING
    if text in ("integer", "int"):
        return INTEGER
    if text.startswith("time:"):
        code = text.split(":", 1)[1].upper()
        for freq in Frequency:
            if freq.value == code or freq.name == code:
                return TIME(freq)
        raise ModelError(f"unknown time frequency {code!r} in {spec!r}")
    raise ModelError(
        f"unknown dimension type {spec!r} (expected time:<freq>, string, integer)"
    )


def format_dimtype(dtype: DimType) -> str:
    """The textual spec of a dimension type (inverse of :func:`parse_dimtype`)."""
    if dtype.kind is DimKind.TIME:
        return f"time:{dtype.freq.value}"
    return dtype.kind.value


def _parse_value(dtype: DimType, text: str) -> Any:
    if dtype.kind is DimKind.TIME:
        return parse_timepoint(text)
    if dtype.kind is DimKind.INTEGER:
        return int(text)
    return text


def parse_dim_value(dtype: DimType, text: str) -> Any:
    """Parse one dimension value from its ``str()`` serialization.

    The inverse of how :func:`write_cube_csv` serializes dimension
    values; also used by the columnar sidecar format, whose dictionary
    entries round-trip through the same textual form as the CSVs.
    """
    return _parse_value(dtype, text)


def write_cube_csv(cube: Cube, destination: Union[str, Path, TextIO]) -> None:
    """Write a cube to CSV (header = dimensions then measure)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            _write(cube, handle)
    else:
        _write(cube, destination)


def _write(cube: Cube, handle: TextIO) -> None:
    writer = csv.writer(handle)
    writer.writerow(cube.schema.columns)
    # Dimension values repeat heavily across rows (a 600-quarter x
    # 200-region cube has 800 distinct values over 240k cells), so
    # memoize their str() form per call.
    formatted: dict = {}
    for row in cube.to_rows():
        cells = []
        for v in row[:-1]:
            if isinstance(v, float):
                cells.append(repr(v))
                continue
            text = formatted.get(v)
            if text is None:
                text = formatted[v] = str(v)
            cells.append(text)
        cells.append(repr(row[-1]))
        writer.writerow(cells)


def read_cube_csv(schema: CubeSchema, source: Union[str, Path, TextIO]) -> Cube:
    """Read a cube from CSV; the header must match the schema's columns."""
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return _read(schema, handle)
    return _read(schema, source)


def _read(schema: CubeSchema, handle: TextIO) -> Cube:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise ModelError(f"empty CSV for cube {schema.name}") from None
    expected = list(schema.columns)
    if [h.strip() for h in header] != expected:
        raise ModelError(
            f"CSV header {header} does not match cube columns {expected}"
        )
    cube = Cube(schema)
    # Memoize parsed dimension values per column: the same time points
    # and labels recur on every row, and parse_timepoint dominates the
    # read cost when re-parsed per cell.
    dtypes = [dim.dtype for dim in schema.dimensions]
    caches: list = [{} for _ in dtypes]
    for line_number, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) != len(expected):
            raise ModelError(
                f"line {line_number}: {len(row)} fields for {len(expected)} columns"
            )
        try:
            key = []
            for dtype, cache, cell in zip(dtypes, caches, row):
                text = cell.strip()
                parsed = cache.get(text)
                if parsed is None:
                    parsed = cache[text] = _parse_value(dtype, text)
                key.append(parsed)
            value = float(row[-1])
        except (ValueError, ModelError) as exc:
            raise ModelError(f"line {line_number}: {exc}") from exc
        cube.set(tuple(key), value)
    return cube


def cube_to_csv_text(cube: Cube) -> str:
    """The cube's CSV serialization as a string."""
    buffer = io.StringIO()
    write_cube_csv(cube, buffer)
    return buffer.getvalue()


def cube_from_csv_text(schema: CubeSchema, text: str) -> Cube:
    """Parse a cube from CSV text."""
    return read_cube_csv(schema, io.StringIO(text))
