"""The Matrix data model: cubes, time points, schemas, metadata catalog.

This package reproduces the data model of Section 3 of the paper —
statistical functions (*cubes*) over typed dimensions, with time series
as the 1-dimensional time-indexed special case — plus the metadata
catalog with historicity described in Section 6.
"""

from .catalog import CubeEntry, MetadataCatalog, VersionedStore
from .cube import Cube, CubeDelta, CubeSchema, Dimension
from .schema import Schema
from .time import (
    Frequency,
    TimePoint,
    convert,
    day,
    month,
    parse_timepoint,
    quarter,
    week,
    year,
)
from .types import INTEGER, STRING, TIME, DimKind, DimType, validate_value

__all__ = [
    "Cube",
    "CubeDelta",
    "CubeSchema",
    "Dimension",
    "Schema",
    "Frequency",
    "TimePoint",
    "convert",
    "day",
    "week",
    "month",
    "quarter",
    "year",
    "parse_timepoint",
    "DimKind",
    "DimType",
    "TIME",
    "STRING",
    "INTEGER",
    "validate_value",
    "MetadataCatalog",
    "VersionedStore",
    "CubeEntry",
]
