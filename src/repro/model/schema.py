"""Schemas: named collections of cube schemas.

The schema-mapping machinery works over a *source schema* (elementary
cubes) and a *target schema* (all cubes, renamed copies included), as
in Section 4.1.  :class:`Schema` is the container both sides use.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import SchemaError
from .cube import CubeSchema

__all__ = ["Schema"]


class Schema:
    """An ordered, name-indexed collection of :class:`CubeSchema`."""

    def __init__(self, cubes: Iterable[CubeSchema] = (), name: str = "schema"):
        self.name = name
        self._cubes: Dict[str, CubeSchema] = {}
        for cube in cubes:
            self.add(cube)

    def add(self, cube: CubeSchema) -> None:
        """Register a cube schema; duplicate names are rejected."""
        if cube.name in self._cubes:
            raise SchemaError(f"cube {cube.name} already declared in schema {self.name}")
        self._cubes[cube.name] = cube

    def replace(self, cube: CubeSchema) -> None:
        """Register a cube schema, overwriting an existing declaration."""
        self._cubes[cube.name] = cube

    def __contains__(self, name: str) -> bool:
        return name in self._cubes

    def __getitem__(self, name: str) -> CubeSchema:
        try:
            return self._cubes[name]
        except KeyError:
            raise SchemaError(f"schema {self.name} has no cube {name!r}") from None

    def get(self, name: str) -> Optional[CubeSchema]:
        return self._cubes.get(name)

    def __iter__(self) -> Iterator[CubeSchema]:
        return iter(self._cubes.values())

    def __len__(self) -> int:
        return len(self._cubes)

    @property
    def names(self) -> List[str]:
        return list(self._cubes)

    def copy(self, name: Optional[str] = None) -> "Schema":
        return Schema(self._cubes.values(), name or self.name)

    def merged(self, other: "Schema", name: str = "merged") -> "Schema":
        """A new schema with the cubes of both; name clashes are rejected."""
        result = self.copy(name)
        for cube in other:
            result.add(cube)
        return result

    def __repr__(self) -> str:
        return f"Schema({self.name}, cubes={self.names})"

    def describe(self) -> str:
        """Multi-line human-readable listing."""
        return "\n".join(str(c) for c in self)
