"""Cubes: the central data structure of the Matrix model.

A cube is a *partial function* ``F : X1 × … × Xn -> Y`` (Section 3).
:class:`CubeSchema` describes the intension (name, dimensions, measure)
and :class:`Cube` holds an extension: a sparse mapping from dimension
tuples to a numeric measure.  The functional nature of cubes — at most
one measure per dimension tuple — is the invariant the paper's egds
enforce; :meth:`Cube.set` guards it at the model level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import CubeError, SchemaError
from .time import TimePoint
from .types import DimType, validate_value

__all__ = ["Dimension", "CubeSchema", "Cube", "CubeDelta"]

DimTuple = Tuple[Any, ...]

_MISSING = object()


def _same_measure(a: float, b: float) -> bool:
    """Exact measure equality with NaN treated as equal to itself.

    ``float('nan') != float('nan')`` would make every NaN measure look
    permanently changed, so source diffing would emit phantom deltas on
    each update cycle.  NaN↔NaN is "unchanged"; NaN↔value is a delta.
    """
    return a == b or (a != a and b != b)


def _close(a: float, b: float, rel_tol: float, abs_tol: float) -> bool:
    """``math.isclose`` with the same NaN↔NaN-is-equal convention."""
    if a != a or b != b:
        return a != a and b != b
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


@dataclass
class CubeDelta:
    """A structured diff between two extensions of one cube.

    Rows are relational tuples ``(x1, …, xn, y)``.  ``updated`` pairs
    the baseline row with the revised row for dimension tuples present
    on both sides whose measures differ (NaN-consistently: see
    :func:`_same_measure`).  This is the unit the delta-stratified
    chase propagates.
    """

    inserted: List[Tuple[Any, ...]] = field(default_factory=list)
    deleted: List[Tuple[Any, ...]] = field(default_factory=list)
    updated: List[Tuple[Tuple[Any, ...], Tuple[Any, ...]]] = field(
        default_factory=list
    )

    @property
    def is_empty(self) -> bool:
        return not (self.inserted or self.deleted or self.updated)

    def count(self) -> int:
        """Number of changed rows."""
        return len(self.inserted) + len(self.deleted) + len(self.updated)

    def old_facts(self) -> List[Tuple[Any, ...]]:
        """Rows to retract: deleted rows plus the old side of updates."""
        return self.deleted + [old for old, _ in self.updated]

    def new_facts(self) -> List[Tuple[Any, ...]]:
        """Rows to assert: inserted rows plus the new side of updates."""
        return self.inserted + [new for _, new in self.updated]


@dataclass(frozen=True)
class Dimension:
    """A named dimension with a typed domain."""

    name: str
    dtype: DimType

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid dimension name: {self.name!r}")

    def __str__(self) -> str:
        return f"{self.name}: {self.dtype}"


@dataclass(frozen=True)
class CubeSchema:
    """The intension of a cube: its name, dimensions and measure name."""

    name: str
    dimensions: Tuple[Dimension, ...]
    measure: str = "value"

    def __init__(self, name: str, dimensions: Sequence[Dimension], measure: str = "value"):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "dimensions", tuple(dimensions))
        object.__setattr__(self, "measure", measure)
        self.__post_init__()

    def __post_init__(self):
        if not self.name or not all(c.isalnum() or c == "_" for c in self.name):
            raise SchemaError(f"invalid cube name: {self.name!r}")
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension names in cube {self.name}: {names}")
        if self.measure in names:
            raise SchemaError(
                f"measure name {self.measure!r} collides with a dimension in {self.name}"
            )

    @property
    def arity(self) -> int:
        """Number of dimensions."""
        return len(self.dimensions)

    @property
    def dim_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    @property
    def columns(self) -> Tuple[str, ...]:
        """Dimension names followed by the measure name (the relational view)."""
        return self.dim_names + (self.measure,)

    def dimension(self, name: str) -> Dimension:
        for d in self.dimensions:
            if d.name == name:
                return d
        raise SchemaError(f"cube {self.name} has no dimension {name!r}")

    def dim_index(self, name: str) -> int:
        for i, d in enumerate(self.dimensions):
            if d.name == name:
                return i
        raise SchemaError(f"cube {self.name} has no dimension {name!r}")

    @property
    def time_dimensions(self) -> Tuple[Dimension, ...]:
        return tuple(d for d in self.dimensions if d.dtype.is_time)

    @property
    def is_time_series(self) -> bool:
        """A cube whose only dimension is a time dimension (Section 3)."""
        return self.arity == 1 and self.dimensions[0].dtype.is_time

    def sole_time_dimension(self) -> Dimension:
        """The unique time dimension; raises if there is not exactly one."""
        times = self.time_dimensions
        if len(times) != 1:
            raise SchemaError(
                f"cube {self.name} has {len(times)} time dimensions, expected exactly 1"
            )
        return times[0]

    def same_dimensions(self, other: "CubeSchema") -> bool:
        """Same dimension names and types, in the same order.

        This is the compatibility condition for vectorial operators.
        """
        return self.dimensions == other.dimensions

    def renamed(self, new_name: str) -> "CubeSchema":
        return CubeSchema(new_name, self.dimensions, self.measure)

    def __str__(self) -> str:
        dims = ", ".join(str(d) for d in self.dimensions)
        return f"{self.name}({dims}) -> {self.measure}"


class Cube:
    """A sparse cube instance: dimension tuples mapped to measure values.

    The mapping enforces functionality: setting a different measure for
    an existing dimension tuple raises :class:`CubeError` unless
    ``overwrite=True`` is requested.
    """

    def __init__(self, schema: CubeSchema, data: Optional[Dict[DimTuple, float]] = None):
        self.schema = schema
        self._data: Dict[DimTuple, float] = {}
        # cached columnar store of this cube's rows (see
        # chase.instance.store_for_cube); shared by copy(), dropped on
        # mutation — warm chase runs adopt it instead of re-encoding
        self._colstore = None
        if data:
            for key, value in data.items():
                self.set(key, value)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_rows(cls, schema: CubeSchema, rows: Iterable[Sequence[Any]]) -> "Cube":
        """Build a cube from relational rows ``(x1, …, xn, y)``."""
        cube = cls(schema)
        for row in rows:
            row = tuple(row)
            if len(row) != schema.arity + 1:
                raise CubeError(
                    f"row {row!r} has {len(row)} fields, cube {schema.name} "
                    f"expects {schema.arity + 1}"
                )
            cube.set(row[:-1], row[-1])
        return cube

    @classmethod
    def from_series(
        cls, schema: CubeSchema, start: TimePoint, values: Sequence[float]
    ) -> "Cube":
        """Build a time-series cube from consecutive values starting at ``start``."""
        if not schema.is_time_series:
            raise CubeError(f"cube {schema.name} is not a time series")
        cube = cls(schema)
        for i, value in enumerate(values):
            cube.set((start + i,), value)
        return cube

    # -- mapping protocol ------------------------------------------------
    def set(self, key: Sequence[Any], value: float, overwrite: bool = False) -> None:
        """Associate measure ``value`` with dimension tuple ``key``."""
        key = tuple(key)
        if len(key) != self.schema.arity:
            raise CubeError(
                f"dimension tuple {key!r} has arity {len(key)}, cube "
                f"{self.schema.name} expects {self.schema.arity}"
            )
        for dim, component in zip(self.schema.dimensions, key):
            validate_value(dim.dtype, component, f"dimension {dim.name} of {self.schema.name}")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise CubeError(
                f"measure for {self.schema.name}{key!r} must be numeric, got {value!r}"
            )
        if not overwrite and key in self._data and self._data[key] != value:
            raise CubeError(
                f"functional violation on {self.schema.name}{key!r}: "
                f"{self._data[key]!r} vs {value!r}"
            )
        self._data[key] = float(value)
        self._colstore = None

    def get(self, key: Sequence[Any], default: Any = None) -> Any:
        return self._data.get(tuple(key), default)

    def __getitem__(self, key) -> float:
        if not isinstance(key, tuple):
            key = (key,)
        try:
            return self._data[key]
        except KeyError:
            raise CubeError(f"cube {self.schema.name} undefined on {key!r}") from None

    def __contains__(self, key) -> bool:
        if not isinstance(key, tuple):
            key = (key,)
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[DimTuple]:
        return iter(self._data)

    def items(self) -> Iterable[Tuple[DimTuple, float]]:
        return self._data.items()

    def keys(self) -> Iterable[DimTuple]:
        return self._data.keys()

    def values(self) -> Iterable[float]:
        return self._data.values()

    # -- relational view --------------------------------------------------
    def to_rows(self) -> List[Tuple[Any, ...]]:
        """The cube as sorted relational rows ``(x1, …, xn, y)``."""
        return [key + (value,) for key, value in sorted(self._data.items(), key=_row_key)]

    def to_series(self) -> Tuple[List[TimePoint], List[float]]:
        """Time-ordered (points, values) lists; only for time series."""
        if not self.schema.is_time_series:
            raise CubeError(f"cube {self.schema.name} is not a time series")
        points = sorted(self._data, key=lambda k: k[0].ordinal)
        return [p[0] for p in points], [self._data[p] for p in points]

    # -- comparison ---------------------------------------------------------
    def approx_equals(self, other: "Cube", rel_tol: float = 1e-9, abs_tol: float = 1e-9) -> bool:
        """Same dimension tuples and numerically close measures.

        NaN measures compare equal to NaN (and unequal to everything
        else), so a cube is always approx-equal to itself.
        """
        if set(self._data) != set(other._data):
            return False
        return all(
            _close(value, other._data[key], rel_tol, abs_tol)
            for key, value in self._data.items()
        )

    def diff(self, other: "Cube", rel_tol: float = 1e-9, abs_tol: float = 1e-9) -> List[str]:
        """Human-readable differences against ``other`` (for test messages)."""
        problems = []
        for key in sorted(set(self._data) - set(other._data), key=_sort_key):
            problems.append(f"only in left: {key!r} -> {self._data[key]}")
        for key in sorted(set(other._data) - set(self._data), key=_sort_key):
            problems.append(f"only in right: {key!r} -> {other._data[key]}")
        for key in sorted(self._data.keys() & other._data.keys(), key=_sort_key):
            left, right = self._data[key], other._data[key]
            if not _close(left, right, rel_tol, abs_tol):
                problems.append(f"measure differs on {key!r}: {left} vs {right}")
        return problems

    def delta(self, other: "Cube") -> CubeDelta:
        """The structured row delta turning ``self`` into ``other``.

        Measures compare *exactly* (delta propagation must recompute on
        any representable change), except NaN↔NaN which is unchanged.
        Both cubes must share dimensionality; they are normally two
        versions of the same cube.
        """
        if self.schema.arity != other.schema.arity:
            raise CubeError(
                f"cannot delta {self.schema.name} (arity {self.schema.arity}) "
                f"against {other.schema.name} (arity {other.schema.arity})"
            )
        out = CubeDelta()
        mine, theirs = self._data, other._data
        for key, new in theirs.items():
            old = mine.get(key, _MISSING)
            if old is _MISSING:
                out.inserted.append(key + (new,))
            elif not _same_measure(old, new):
                out.updated.append((key + (old,), key + (new,)))
        for key, old in mine.items():
            if key not in theirs:
                out.deleted.append(key + (old,))
        return out

    def patched(self, delta: CubeDelta) -> "Cube":
        """A copy of this cube with ``delta`` applied.

        The inverse of :meth:`delta`: ``a.patched(a.delta(b)) == b``.
        Used by the incremental engine to produce a revised output cube
        from the previous version plus the chase's relation delta,
        without rebuilding (and re-validating) every unchanged row.
        """
        clone = self.copy()
        # the pops below bypass set(), so drop the shared store here
        clone._colstore = None
        for row in delta.deleted:
            clone._data.pop(row[:-1], None)
        for _, new in delta.updated:
            clone.set(new[:-1], new[-1], overwrite=True)
        for row in delta.inserted:
            clone.set(row[:-1], row[-1], overwrite=True)
        return clone

    def __eq__(self, other) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return self.schema == other.schema and self._data == other._data

    def copy(self) -> "Cube":
        clone = Cube(self.schema)
        clone._data = dict(self._data)
        # intentionally shared: the store is immutable from the cube's
        # point of view (any mutation of either copy drops its pointer),
        # and sharing it through the versioned store is what keeps warm
        # runs encode-free
        clone._colstore = self._colstore
        return clone

    def __repr__(self) -> str:
        return f"Cube({self.schema.name}, {len(self)} tuples)"


def _sort_key(key: DimTuple):
    return tuple(
        (0, component.freq.value, component.ordinal)
        if isinstance(component, TimePoint)
        else (1, str(component), 0)
        for component in key
    )


def _row_key(item):
    return _sort_key(item[0])
