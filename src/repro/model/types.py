"""Dimension and measure types for the Matrix data model.

The paper keeps types mostly implicit ("for the sake of simplicity, we
will mainly ignore types") but distinguishes *time* dimensions from
ordinary ones, and assumes all measures are numeric.  We make that
explicit: every dimension carries a :class:`DimType`, which the EXL
semantic checker and the backends use to validate values and to decide
where time operators (shift, frequency conversion) may apply.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import SchemaError
from .time import Frequency, TimePoint

__all__ = ["DimKind", "DimType", "TIME", "STRING", "INTEGER", "validate_value"]


class DimKind(enum.Enum):
    """The broad class of a dimension domain."""

    TIME = "time"
    STRING = "string"
    INTEGER = "integer"


@dataclass(frozen=True)
class DimType:
    """The domain of a dimension.

    ``freq`` is only meaningful for TIME dimensions; it pins the
    sampling frequency of the axis (a daily dimension holds DAY points
    only), which is what makes frequency-conversion operators well
    defined.
    """

    kind: DimKind
    freq: Optional[Frequency] = None

    def __post_init__(self):
        if self.kind is DimKind.TIME and self.freq is None:
            raise SchemaError("a TIME dimension type needs a frequency")
        if self.kind is not DimKind.TIME and self.freq is not None:
            raise SchemaError(f"{self.kind.value} dimension cannot have a frequency")

    @property
    def is_time(self) -> bool:
        return self.kind is DimKind.TIME

    def __str__(self) -> str:
        if self.is_time:
            return f"time[{self.freq.value}]"
        return self.kind.value

    def accepts(self, value: Any) -> bool:
        """Whether ``value`` is a member of this domain."""
        if self.kind is DimKind.TIME:
            return isinstance(value, TimePoint) and value.freq is self.freq
        if self.kind is DimKind.STRING:
            return isinstance(value, str)
        return isinstance(value, int) and not isinstance(value, bool)


def TIME(freq: Frequency) -> DimType:
    """A time dimension type at the given frequency."""
    return DimType(DimKind.TIME, freq)


STRING = DimType(DimKind.STRING)
INTEGER = DimType(DimKind.INTEGER)


def validate_value(dtype: DimType, value: Any, context: str = "") -> None:
    """Raise :class:`SchemaError` unless ``value`` belongs to ``dtype``."""
    if not dtype.accepts(value):
        where = f" in {context}" if context else ""
        raise SchemaError(
            f"value {value!r} does not belong to dimension type {dtype}{where}"
        )
