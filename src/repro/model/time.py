"""Time points and frequencies for the Matrix data model.

Statistical cubes distinguish *time dimensions* from ordinary ones
(Section 3 of the paper): a cube with a single time dimension is a time
series, and operators such as ``shift`` and frequency conversion
(``quarter(d)`` in the paper's statement (1)) act on time values.

A :class:`TimePoint` is an immutable pair ``(frequency, ordinal)`` where
the ordinal is a count of periods since a fixed epoch:

========== ==========================================
frequency  ordinal meaning
========== ==========================================
DAY        proleptic Gregorian ordinal (``date.toordinal``)
WEEK       ISO week count since week 1 of year 1
MONTH      ``year * 12 + (month - 1)``
QUARTER    ``year * 4 + (quarter - 1)``
YEAR       ``year``
========== ==========================================

Because ordinals are plain integers, shifting a time point by *s*
periods — the paper's ``shift`` operator — is integer addition, and
time points order and hash naturally.
"""

from __future__ import annotations

import datetime as _dt
import enum
import functools
import re
from dataclasses import dataclass

from ..errors import TimeError

__all__ = [
    "Frequency",
    "TimePoint",
    "day",
    "week",
    "month",
    "quarter",
    "year",
    "convert",
    "parse_timepoint",
    "rollup_path",
]


class Frequency(enum.Enum):
    """Sampling frequency of a time dimension, highest to lowest."""

    DAY = "D"
    WEEK = "W"
    MONTH = "M"
    QUARTER = "Q"
    YEAR = "A"

    @property
    def rank(self) -> int:
        """Position in the frequency hierarchy; higher means finer."""
        return _RANKS[self]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frequency.{self.name}"


_RANKS = {
    Frequency.YEAR: 0,
    Frequency.QUARTER: 1,
    Frequency.MONTH: 2,
    Frequency.WEEK: 3,
    Frequency.DAY: 4,
}


@functools.total_ordering
@dataclass(frozen=True)
class TimePoint:
    """An immutable point on a calendar axis at a given frequency."""

    freq: Frequency
    ordinal: int

    def __post_init__(self):
        if not isinstance(self.freq, Frequency):
            raise TimeError(f"freq must be a Frequency, got {self.freq!r}")
        if not isinstance(self.ordinal, int):
            raise TimeError(f"ordinal must be an int, got {self.ordinal!r}")
        # time points are hashed far more often than constructed (fact
        # sets, functional indexes, dictionary encoding), and the
        # generated dataclass hash builds a fresh (freq, ordinal) tuple
        # per call — precompute the same value once instead
        object.__setattr__(self, "_hash", hash((self.freq, self.ordinal)))

    def __hash__(self) -> int:
        return self._hash

    # -- ordering -----------------------------------------------------
    def __lt__(self, other: "TimePoint") -> bool:
        if not isinstance(other, TimePoint):
            return NotImplemented
        if self.freq is not other.freq:
            raise TimeError(
                f"cannot compare time points of different frequencies: "
                f"{self.freq.name} vs {other.freq.name}"
            )
        return self.ordinal < other.ordinal

    # -- arithmetic ---------------------------------------------------
    def shift(self, periods: int) -> "TimePoint":
        """Return this point moved forward by ``periods`` (may be negative)."""
        return TimePoint(self.freq, self.ordinal + periods)

    def __add__(self, periods: int) -> "TimePoint":
        if not isinstance(periods, int):
            return NotImplemented
        return self.shift(periods)

    def __sub__(self, other):
        if isinstance(other, int):
            return self.shift(-other)
        if isinstance(other, TimePoint):
            if self.freq is not other.freq:
                raise TimeError("cannot subtract time points of different frequencies")
            return self.ordinal - other.ordinal
        return NotImplemented

    # -- calendar accessors --------------------------------------------
    @property
    def year(self) -> int:
        """Calendar year containing this point."""
        if self.freq is Frequency.YEAR:
            return self.ordinal
        if self.freq is Frequency.QUARTER:
            return self.ordinal // 4
        if self.freq is Frequency.MONTH:
            return self.ordinal // 12
        if self.freq is Frequency.WEEK:
            return self.to_date().isocalendar()[0]
        return self.to_date().year

    @property
    def quarter_of_year(self) -> int:
        """Quarter (1..4) containing this point."""
        if self.freq is Frequency.YEAR:
            raise TimeError("a YEAR point has no quarter")
        if self.freq is Frequency.QUARTER:
            return self.ordinal % 4 + 1
        return (self.month_of_year - 1) // 3 + 1

    @property
    def month_of_year(self) -> int:
        """Month (1..12) containing this point."""
        if self.freq in (Frequency.YEAR, Frequency.QUARTER):
            raise TimeError(f"a {self.freq.name} point has no month")
        if self.freq is Frequency.MONTH:
            return self.ordinal % 12 + 1
        return self.to_date().month

    def to_date(self) -> _dt.date:
        """The first calendar day of this period."""
        if self.freq is Frequency.DAY:
            return _dt.date.fromordinal(self.ordinal)
        if self.freq is Frequency.WEEK:
            return _dt.date.fromordinal(self.ordinal * 7 + _WEEK_EPOCH)
        if self.freq is Frequency.MONTH:
            return _dt.date(self.ordinal // 12, self.ordinal % 12 + 1, 1)
        if self.freq is Frequency.QUARTER:
            return _dt.date(self.ordinal // 4, (self.ordinal % 4) * 3 + 1, 1)
        return _dt.date(self.ordinal, 1, 1)

    # -- rendering -----------------------------------------------------
    def __str__(self) -> str:
        if self.freq is Frequency.DAY:
            return self.to_date().isoformat()
        if self.freq is Frequency.WEEK:
            iso = self.to_date().isocalendar()
            return f"{iso[0]}W{iso[1]:02d}"
        if self.freq is Frequency.MONTH:
            return f"{self.year}M{self.month_of_year:02d}"
        if self.freq is Frequency.QUARTER:
            return f"{self.year}Q{self.quarter_of_year}"
        return str(self.year)

    def __repr__(self) -> str:
        return f"TimePoint({self.freq.name}, {self!s})"


# Monday of ISO week 1 of year 1, as a day ordinal, so that week
# ordinals count whole ISO weeks from that Monday.
_WEEK_EPOCH = _dt.date.fromisocalendar(1, 1, 1).toordinal()


def day(y: int, m: int, d: int) -> TimePoint:
    """A daily time point for the calendar date ``y-m-d``."""
    try:
        ordinal = _dt.date(y, m, d).toordinal()
    except ValueError as exc:
        raise TimeError(f"invalid date {y}-{m}-{d}: {exc}") from exc
    return TimePoint(Frequency.DAY, ordinal)


def week(y: int, w: int) -> TimePoint:
    """A weekly time point for ISO week ``w`` of ISO year ``y``."""
    try:
        monday = _dt.date.fromisocalendar(y, w, 1)
    except ValueError as exc:
        raise TimeError(f"invalid ISO week {y}W{w}: {exc}") from exc
    return TimePoint(Frequency.WEEK, (monday.toordinal() - _WEEK_EPOCH) // 7)


def month(y: int, m: int) -> TimePoint:
    """A monthly time point for month ``m`` of year ``y``."""
    if not 1 <= m <= 12:
        raise TimeError(f"invalid month {m}")
    return TimePoint(Frequency.MONTH, y * 12 + (m - 1))


def quarter(y: int, q: int) -> TimePoint:
    """A quarterly time point for quarter ``q`` of year ``y``."""
    if not 1 <= q <= 4:
        raise TimeError(f"invalid quarter {q}")
    return TimePoint(Frequency.QUARTER, y * 4 + (q - 1))


def year(y: int) -> TimePoint:
    """A yearly time point for calendar year ``y``."""
    return TimePoint(Frequency.YEAR, y)


def convert(point: TimePoint, target: Frequency) -> TimePoint:
    """Down-sample ``point`` to a coarser (or equal) frequency.

    This is the scalar dimension function behind the paper's
    ``quarter(t)`` in tgd (1): the quarterly period containing a day.
    Converting to a *finer* frequency is ambiguous and raises
    :class:`TimeError`.
    """
    if target is point.freq:
        return point
    if target.rank > point.freq.rank:
        raise TimeError(
            f"cannot convert {point.freq.name} to finer frequency {target.name}"
        )
    if target is Frequency.YEAR:
        return year(point.year)
    if target is Frequency.QUARTER:
        return quarter(point.year, point.quarter_of_year)
    if target is Frequency.MONTH:
        return month(point.year, point.month_of_year)
    # target is WEEK, point is DAY
    date = point.to_date()
    iso = date.isocalendar()
    return week(iso[0], iso[1])


def rollup_path(freq: Frequency) -> tuple:
    """The coarser frequencies a time dimension rolls up through.

    This is the calendar hierarchy behind OLAP roll-up and drill-down:
    every point at ``freq`` maps to exactly one period at each returned
    frequency via :func:`convert`, ordered finest to coarsest.  WEEK is
    excluded from the paths of finer frequencies because ISO weeks
    straddle month and quarter boundaries — a week does not nest inside
    any of them — while a WEEK dimension itself rolls up to its ISO
    year only.
    """
    if freq is Frequency.WEEK:
        return (Frequency.YEAR,)
    return tuple(
        f
        for f in (Frequency.MONTH, Frequency.QUARTER, Frequency.YEAR)
        if f.rank < freq.rank
    )


_PATTERNS = [
    (re.compile(r"^(\d{4})-(\d{2})-(\d{2})$"), lambda m: day(int(m[1]), int(m[2]), int(m[3]))),
    (re.compile(r"^(\d{4})W(\d{1,2})$"), lambda m: week(int(m[1]), int(m[2]))),
    (re.compile(r"^(\d{4})M(\d{1,2})$"), lambda m: month(int(m[1]), int(m[2]))),
    (re.compile(r"^(\d{4})Q([1-4])$"), lambda m: quarter(int(m[1]), int(m[2]))),
    (re.compile(r"^(\d{4})$"), lambda m: year(int(m[1]))),
]


def parse_timepoint(text: str) -> TimePoint:
    """Parse the string forms produced by :meth:`TimePoint.__str__`.

    Accepted formats: ``2020-03-15`` (day), ``2020W07`` (week),
    ``2020M03`` (month), ``2020Q1`` (quarter), ``2020`` (year).
    """
    for pattern, build in _PATTERNS:
        match = pattern.match(text.strip())
        if match:
            return build(match)
    raise TimeError(f"unrecognized time point literal: {text!r}")
