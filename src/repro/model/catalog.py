"""The metadata catalog and historicity support.

EXLEngine is *metadata driven* (Section 6): definitions of cubes —
elementary or derived — and the EXL statements relating them guide the
runtime behaviour.  :class:`MetadataCatalog` stores cube schemas, the
statement texts defining derived cubes, technical metadata (preferred
target systems), and a :class:`VersionedStore` of cube instances, which
implements the *historicity* feature: cube data is time-dependent and
every write produces a new version rather than destroying the past.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import CatalogError
from .cube import Cube, CubeSchema
from .schema import Schema

__all__ = ["CubeKind", "CubeEntry", "VersionedStore", "MetadataCatalog"]


ELEMENTARY = "elementary"
DERIVED = "derived"


@dataclass
class CubeEntry:
    """Catalog record for one cube."""

    schema: CubeSchema
    kind: str  # ELEMENTARY or DERIVED
    statement_text: Optional[str] = None  # EXL text, for derived cubes
    preferred_target: Optional[str] = None  # technical metadata


class VersionedStore:
    """Versioned cube storage: every put appends, never overwrites.

    Versions are monotonically increasing integers assigned by the
    store; ``get`` with no version returns the latest instance.
    """

    def __init__(self):
        self._history: Dict[str, List[Tuple[int, Cube]]] = {}
        self._clock = 0

    def put(self, cube: Cube) -> int:
        """Store a new version of the cube; returns the version number."""
        self._clock += 1
        self._history.setdefault(cube.schema.name, []).append((self._clock, cube.copy()))
        return self._clock

    def get(self, name: str, version: Optional[int] = None) -> Cube:
        """Latest instance, or the newest one at or before ``version``."""
        history = self._history.get(name)
        if not history:
            raise CatalogError(f"no stored data for cube {name!r}")
        if version is None:
            return history[-1][1]
        candidates = [cube for v, cube in history if v <= version]
        if not candidates:
            raise CatalogError(f"cube {name!r} has no version at or before {version}")
        return candidates[-1]

    def has(self, name: str) -> bool:
        return bool(self._history.get(name))

    def versions(self, name: str) -> List[int]:
        return [v for v, _ in self._history.get(name, [])]

    def latest_version(self, name: str) -> int:
        history = self._history.get(name)
        if not history:
            raise CatalogError(f"no stored data for cube {name!r}")
        return history[-1][0]

    @property
    def clock(self) -> int:
        """The most recently assigned version number."""
        return self._clock

    def names(self) -> List[str]:
        return list(self._history)


class MetadataCatalog:
    """The central registry driving EXLEngine's runtime behaviour."""

    def __init__(self):
        self._entries: Dict[str, CubeEntry] = {}
        self.store = VersionedStore()
        # declared attribute groupings: (cube, dimension) -> ordered
        # {level name: value mapping}.  Time dimensions get their
        # calendar hierarchy for free (repro.model.time.rollup_path);
        # flat attribute dimensions only have the levels declared here.
        self._groupings: Dict[Tuple[str, str], Dict[str, Dict]] = {}

    # -- declarations -----------------------------------------------------
    def declare_elementary(
        self, schema: CubeSchema, preferred_target: Optional[str] = None
    ) -> None:
        """Declare an elementary cube: base data fed from outside."""
        self._declare(CubeEntry(schema, ELEMENTARY, None, preferred_target))

    def declare_derived(
        self,
        schema: CubeSchema,
        statement_text: str,
        preferred_target: Optional[str] = None,
    ) -> None:
        """Declare a derived cube, defined by an EXL statement."""
        self._declare(CubeEntry(schema, DERIVED, statement_text, preferred_target))

    def _declare(self, entry: CubeEntry) -> None:
        if entry.schema.name in self._entries:
            raise CatalogError(f"cube {entry.schema.name} already declared")
        self._entries[entry.schema.name] = entry

    def declare_grouping(
        self, cube: str, dimension: str, level: str, mapping: Dict
    ) -> None:
        """Declare an attribute grouping: a named roll-up level over one
        flat dimension of one cube (e.g. region -> zone).

        ``mapping`` sends base dimension values to coarser group labels;
        values absent from the mapping pass through unchanged, so a
        partial grouping is total.  Groupings are metadata in the
        paper's sense: the OLAP layer derives dimension hierarchies from
        them (between the base level and the implicit all-level), in
        declaration order, finest first.
        """
        schema = self.schema_of(cube)
        dim = schema.dimension(dimension)  # raises on unknown dimension
        if dim.dtype.is_time:
            raise CatalogError(
                f"dimension {dimension!r} of {cube} is a time axis; its "
                f"hierarchy is derived from the calendar, not declared"
            )
        levels = self._groupings.setdefault((cube, dimension), {})
        if level in levels:
            raise CatalogError(
                f"grouping {level!r} already declared on {cube}.{dimension}"
            )
        levels[level] = dict(mapping)

    def groupings_for(self, cube: str, dimension: str) -> Dict[str, Dict]:
        """Declared groupings of one dimension, in declaration order."""
        return {
            name: dict(mapping)
            for name, mapping in self._groupings.get(
                (cube, dimension), {}
            ).items()
        }

    # -- queries ------------------------------------------------------------
    def entry(self, name: str) -> CubeEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise CatalogError(f"unknown cube {name!r}") from None

    def schema_of(self, name: str) -> CubeSchema:
        return self.entry(name).schema

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def is_elementary(self, name: str) -> bool:
        return self.entry(name).kind == ELEMENTARY

    def is_derived(self, name: str) -> bool:
        return self.entry(name).kind == DERIVED

    @property
    def elementary_names(self) -> List[str]:
        return [n for n, e in self._entries.items() if e.kind == ELEMENTARY]

    @property
    def derived_names(self) -> List[str]:
        return [n for n, e in self._entries.items() if e.kind == DERIVED]

    def names(self) -> List[str]:
        return list(self._entries)

    def as_schema(self, name: str = "catalog") -> Schema:
        """All declared cube schemas, as a :class:`Schema`."""
        return Schema((e.schema for e in self._entries.values()), name)

    # -- data ------------------------------------------------------------------
    def load(self, cube: Cube) -> int:
        """Store elementary cube data; derived cubes are written by runs."""
        if cube.schema.name not in self._entries:
            raise CatalogError(f"cube {cube.schema.name} is not declared")
        return self.store.put(cube)

    def data(self, name: str, version: Optional[int] = None) -> Cube:
        if name not in self._entries:
            raise CatalogError(f"cube {name!r} is not declared")
        return self.store.get(name, version)

    def has_data(self, name: str) -> bool:
        return self.store.has(name)
