"""The eagerly maintained roll-up lattice of one cube.

Gray et al.'s data cube is the union of group-bys over every subset of
dimensions; with hierarchies, every *combination of one level per
dimension* is a lattice node.  :class:`CubeLattice` materializes all of
them for one cube, so slice/dice/roll-up/drill-down queries are
dictionary lookups — no CSV is read and no group-by runs at query time.

Three properties keep the lattice honest:

* **Every node reduces the base rows directly** (never a finer node),
  with measures folded in :func:`repro.stats.aggregates.canonical_bag`
  order.  A lattice-served aggregate is therefore bit-identical to a
  recompute-from-scratch oracle, whichever path built it.
* **Building is columnar**: the cube's :class:`ColumnStore` image is
  grouped with the same primitives as the aggregation kernel —
  per-distinct-value level transforms (:func:`transform_encoded`),
  mixed-radix composite group codes (:func:`mix_codes`), one stable
  argsort per node.  Tuple mode (``EXL_FORCE_TUPLE_VIEW=1``) falls back
  to a plain dict group-by with identical results.
* **Refreshing is incremental**: each node keeps a per-group
  contribution index (built lazily from the previous base version) and
  splices a :class:`CubeDelta` through it with
  :func:`repro.chase.delta.rereduce_groups`, re-reducing only dirty
  groups — the count lands on ``olap.lattice.groups.rereduced``.
  Unregistered (callable) aggregates cannot be named in sidecars or
  trusted to be bag functions, so they rebuild from scratch instead,
  counted under ``olap.lattice.fallback.reason:*`` exactly like the
  delta chase's own fallbacks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..chase.colstore import ColumnStore
from ..chase.columnar import (
    EncodedColumn,
    FallbackUnsupported,
    mix_codes,
    transform_encoded,
)
from ..chase.delta import rereduce_groups
from ..chase.instance import store_for_cube
from ..model.cube import Cube, CubeDelta
from ..stats.aggregates import AGGREGATES, get_aggregate
from .hierarchy import ALL, DimHierarchy, Level, OlapError

__all__ = ["LatticeNode", "CubeLattice"]

_INT = np.int64


class LatticeNode:
    """One group-by of the lattice: a chosen level per dimension.

    ``key`` names the level choice (one level name per dimension, in
    schema order); ``groups`` maps group keys — tuples of level values
    for the non-all dimensions, in schema order — to the aggregate of
    the base measures rolling up into them.
    """

    __slots__ = ("key", "levels", "groups", "_index", "_store")

    def __init__(self, key: Tuple[str, ...], levels: Tuple[Level, ...]):
        self.key = key
        self.levels = levels
        self.groups: Dict[Tuple, float] = {}
        # lazy per-group contribution index {group key: {base dims:
        # measure}}, built from the previous base version on first
        # incremental refresh; None until then
        self._index: Optional[Dict[Tuple, Dict[Tuple, Any]]] = None
        self._store: Optional[ColumnStore] = None

    @property
    def arity(self) -> int:
        """Group-key width: the number of non-all dimensions."""
        return sum(1 for lvl in self.levels if not lvl.is_all)

    def group_key(self, dims: Tuple) -> Tuple:
        """The group a base dimension tuple rolls up into."""
        return tuple(
            lvl.fn(value)
            for lvl, value in zip(self.levels, dims)
            if not lvl.is_all
        )

    def classify(self, fact: Tuple) -> Tuple[Tuple, Any]:
        """``(group key, contribution)`` of one base fact — the shape
        :func:`repro.chase.delta.rereduce_groups` expects."""
        return self.group_key(fact[:-1]), fact[-1]

    def as_store(self) -> ColumnStore:
        """The node's result relation as a :class:`ColumnStore`.

        Materialized lazily from ``groups`` (refreshes drop it), sorted
        by repr of the group key so the row order is deterministic.
        """
        store = self._store
        if store is None:
            store = ColumnStore(self.arity + 1)
            for key in sorted(self.groups, key=_group_sort_key):
                store.add(key + (self.groups[key],))
            store.dims_distinct = True
            self._store = store
        return store

    def invalidate(self) -> None:
        self._index = None
        self._store = None


def _group_sort_key(key: Tuple) -> Tuple:
    return tuple((type(part).__name__, repr(part)) for part in key)


class CubeLattice:
    """All roll-up nodes of one cube, kept fresh across versions."""

    def __init__(
        self,
        name: str,
        hierarchies: Tuple[DimHierarchy, ...],
        aggregate: Any = "sum",
        metrics=None,
    ):
        self.name = name
        self.hierarchies = hierarchies
        if callable(aggregate):
            # an ad-hoc callable: usable, but opaque — no sidecar name,
            # no bag-function guarantee, so refreshes rebuild in full
            self.agg_name: Optional[str] = None
            self.aggregate: Callable = aggregate
        else:
            self.agg_name = str(aggregate).lower()
            self.aggregate = get_aggregate(self.agg_name)
            if self.agg_name == "mean":  # canonical registry name
                self.agg_name = "avg"
        self.metrics = metrics
        self.version: Optional[int] = None
        self.nodes: Dict[Tuple[str, ...], LatticeNode] = {}
        for key, levels in _level_product(hierarchies):
            self.nodes[key] = LatticeNode(key, levels)
        self._base: Optional[Cube] = None
        if metrics is not None:
            metrics.inc("olap.lattice.nodes", len(self.nodes))

    # -- lookups -----------------------------------------------------------
    def node(self, levels: Dict[str, str]) -> LatticeNode:
        """The node for a level choice; unnamed dimensions stay at base."""
        key = []
        named = dict(levels)
        for hierarchy in self.hierarchies:
            choice = named.pop(hierarchy.dim.name, None)
            if choice is None:
                key.append(hierarchy.levels[0].name)
            else:
                key.append(hierarchy.level(choice).name)  # validates
        if named:
            raise OlapError(
                f"cube {self.name!r} has no dimension "
                f"{sorted(named)[0]!r}"
            )
        return self.nodes[tuple(key)]

    def hierarchy(self, dim: str) -> DimHierarchy:
        for hierarchy in self.hierarchies:
            if hierarchy.dim.name == dim:
                return hierarchy
        raise OlapError(f"cube {self.name!r} has no dimension {dim!r}")

    def total_groups(self) -> int:
        return sum(len(node.groups) for node in self.nodes.values())

    # -- full build --------------------------------------------------------
    def build(self, cube: Cube, version: Optional[int] = None) -> None:
        """Group-reduce every node from the base cube.

        Uses the columnar kernels when the cube carries (or can build)
        a :class:`ColumnStore`; forced tuple view or non-columnar rows
        take the scalar group-by.  Both fold in canonical bag order.
        """
        self._base = cube
        self.version = version
        for node in self.nodes.values():
            node.invalidate()
        store = None if cube.schema.arity == 0 else store_for_cube(cube)
        if store is not None and store.n_rows:
            try:
                self._build_columnar(store.image())
            except FallbackUnsupported:
                self._build_tuple(cube)
        else:
            self._build_tuple(cube)
        if self.metrics is not None:
            self.metrics.inc("olap.lattice.builds")
            self.metrics.inc("olap.lattice.groups", self.total_groups())

    def _build_columnar(self, image) -> None:
        n = image.n_rows
        measures = image.measures
        # one dictionary transform per (dimension, level), shared by
        # every node that uses that level
        transformed: Dict[Tuple[int, str], EncodedColumn] = {}
        for j, hierarchy in enumerate(self.hierarchies):
            for lvl in hierarchy.levels:
                if lvl.is_all:
                    continue
                if lvl.is_base:
                    transformed[(j, lvl.name)] = image.dims[j]
                else:
                    transformed[(j, lvl.name)] = transform_encoded(
                        image.dims[j], lvl.fn
                    )
        for node in self.nodes.values():
            cols = [
                transformed[(j, lvl.name)]
                for j, lvl in enumerate(node.levels)
                if not lvl.is_all
            ]
            node.groups = _group_reduce(cols, measures, n, self.aggregate)

    def _build_tuple(self, cube: Cube) -> None:
        # per-(dimension, level) value maps computed once over the
        # distinct base values, mirroring transform_encoded's
        # per-distinct-value evaluation
        distinct: List[Dict[Any, None]] = [
            {} for _ in range(cube.schema.arity)
        ]
        for dims in cube.keys():
            for j, value in enumerate(dims):
                distinct[j][value] = None
        level_maps: Dict[Tuple[int, str], Dict[Any, Any]] = {}
        for j, hierarchy in enumerate(self.hierarchies):
            for lvl in hierarchy.levels:
                if not lvl.is_all:
                    level_maps[(j, lvl.name)] = {
                        value: lvl.fn(value) for value in distinct[j]
                    }
        for node in self.nodes.values():
            maps = [
                (j, level_maps[(j, lvl.name)])
                for j, lvl in enumerate(node.levels)
                if not lvl.is_all
            ]
            bags: Dict[Tuple, List[float]] = {}
            for dims, measure in cube.items():
                key = tuple(mapping[dims[j]] for j, mapping in maps)
                bags.setdefault(key, []).append(measure)
            node.groups = {
                key: self.aggregate(values) for key, values in bags.items()
            }

    # -- incremental refresh -----------------------------------------------
    def refresh(
        self,
        cube: Cube,
        version: Optional[int] = None,
        delta: Optional[CubeDelta] = None,
    ) -> int:
        """Bring the lattice to a new base version.

        Splices the row delta through each node's contribution index,
        re-reducing only dirty groups; returns the total re-reduced
        group count across nodes (also ``olap.lattice.groups.rereduced``
        on the metrics registry).  Falls back to a full :meth:`build`
        — counted like the delta chase's ``delta.fallback.reason:*`` —
        when there is no baseline to delta against or the aggregate is
        an unregistered callable.
        """
        if self._base is None:
            return self._fallback(cube, version, "no-baseline")
        if self.agg_name is None or self.agg_name not in AGGREGATES:
            return self._fallback(cube, version, "unregistered-aggregate")
        if delta is None:
            delta = self._base.delta(cube)
        old_facts = list(delta.deleted) + [old for old, _ in delta.updated]
        new_facts = list(delta.inserted) + [new for _, new in delta.updated]
        rereduced = 0
        for node in self.nodes.values() if old_facts or new_facts else ():
            if node._index is None:
                node._index = self._build_index(node)
            rereduced += rereduce_groups(
                node._index,
                old_facts,
                new_facts,
                node.classify,
                self.aggregate,
                node.groups,
            )
            node._store = None
        self._base = cube
        self.version = version
        if self.metrics is not None:
            self.metrics.inc("olap.lattice.refreshes")
            self.metrics.inc("olap.lattice.groups.rereduced", rereduced)
        return rereduced

    def _build_index(self, node: LatticeNode) -> Dict[Tuple, Dict[Tuple, Any]]:
        index: Dict[Tuple, Dict[Tuple, Any]] = {}
        for dims, measure in self._base.items():
            index.setdefault(node.group_key(dims), {})[dims] = measure
        if self.metrics is not None:
            self.metrics.inc("olap.lattice.index.builds")
        return index

    def _fallback(
        self, cube: Cube, version: Optional[int], reason: str
    ) -> int:
        if self.metrics is not None:
            self.metrics.inc("olap.lattice.fallback")
            self.metrics.inc(f"olap.lattice.fallback.reason:{reason}")
        self.build(cube, version)
        return self.total_groups()


def _level_product(
    hierarchies: Tuple[DimHierarchy, ...],
) -> List[Tuple[Tuple[str, ...], Tuple[Level, ...]]]:
    """Every one-level-per-dimension combination, base node first."""
    combos: List[Tuple[Tuple[str, ...], Tuple[Level, ...]]] = [((), ())]
    for hierarchy in hierarchies:
        combos = [
            (names + (lvl.name,), levels + (lvl,))
            for names, levels in combos
            for lvl in hierarchy.levels
        ]
    return combos


def _group_reduce(
    cols: List[EncodedColumn], measures: np.ndarray, n: int, aggregate
) -> Dict[Tuple, float]:
    """One node's group-by via composite codes + one stable argsort."""
    if not cols:
        # the all-all node: a single group keyed by the empty tuple
        if not n:
            return {}
        return {(): aggregate(measures.tolist())}
    bases = [max(len(col.dictionary), 1) for col in cols]
    composite = mix_codes([col.codes for col in cols], bases, n)
    order = np.argsort(composite, kind="stable")
    sorted_codes = composite[order]
    sorted_measures = measures[order].tolist()
    boundaries = np.nonzero(np.diff(sorted_codes))[0] + 1
    starts = [0, *boundaries.tolist()]
    ends = [*boundaries.tolist(), n]
    groups: Dict[Tuple, float] = {}
    order_list = order.tolist()
    for start, end in zip(starts, ends):
        row = order_list[start]
        key = tuple(col.dictionary[col.codes[row]] for col in cols)
        groups[key] = aggregate(sorted_measures[start:end])
    return groups
