"""OLAP query layer over versioned cubes.

Statistical cubes are already the paper's data model; this package adds
the query side: dimension hierarchies derived from the metadata
(:mod:`.hierarchy`), an eagerly maintained roll-up lattice per cube
(:mod:`.lattice`), and a slice/dice/roll-up/drill-down service with
version pinning (:mod:`.query`).
"""

from .hierarchy import (
    ALL,
    ALL_LEVEL,
    DimHierarchy,
    Level,
    OlapError,
    derive_hierarchy,
    hierarchies_for,
)
from .lattice import CubeLattice, LatticeNode
from .query import OlapService, QueryResult, format_measure

__all__ = [
    "ALL",
    "ALL_LEVEL",
    "DimHierarchy",
    "Level",
    "OlapError",
    "derive_hierarchy",
    "hierarchies_for",
    "CubeLattice",
    "LatticeNode",
    "OlapService",
    "QueryResult",
    "format_measure",
]
