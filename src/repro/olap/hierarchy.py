"""Dimension hierarchies derived from the model.

OLAP roll-up and drill-down (Kuijpers–Vaisman's algebra) move along
*hierarchy levels* of a dimension.  EXLEngine derives them from the
metadata it already has instead of asking for a separate dimension
model:

* A **time dimension** gets the calendar hierarchy its frequency
  implies (:func:`repro.model.time.rollup_path`): a monthly axis rolls
  up through quarters and years, a daily axis through months, quarters
  and years — the same ``convert`` semantics the paper's ``quarter(d)``
  term uses in tgd (1).
* A **flat attribute dimension** has only its base level, plus any
  groupings declared in the catalog
  (:meth:`repro.model.catalog.MetadataCatalog.declare_grouping`), in
  declaration order, finest first.
* Every dimension ends in the implicit **all** level (Gray et al.'s
  ``ALL`` value), which collapses the dimension entirely — that level
  is what cross-tab sub-totals and grand totals are served from.

A :class:`Level` is a named total function from base dimension values
to level values; a :class:`DimHierarchy` is the ordered tuple of levels
of one dimension, base first, ``all`` last.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ReproError
from ..model.catalog import MetadataCatalog
from ..model.cube import CubeSchema, Dimension
from ..model.time import convert, rollup_path
from ..model.types import TIME, DimType

__all__ = [
    "ALL",
    "ALL_LEVEL",
    "Level",
    "DimHierarchy",
    "OlapError",
    "derive_hierarchy",
    "hierarchies_for",
]

ALL_LEVEL = "all"


class OlapError(ReproError):
    """An invalid OLAP query or hierarchy operation."""


class _AllToken:
    """The single ``ALL`` value: every base value maps to it at the
    all-level, so one group holds the whole dimension.  A dedicated
    singleton (not a string) so it can never collide with a real
    dimension value."""

    _instance = None
    __slots__ = ()

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ALL"

    def __str__(self) -> str:
        return "(all)"


ALL = _AllToken()


@dataclass(frozen=True)
class Level:
    """One hierarchy level: a named total map from base dim values.

    ``depth`` orders levels within a hierarchy (0 = base, larger =
    coarser); ``dtype`` is the value type at this level when one is
    known (time levels, the base level) and None for declared
    groupings, whose labels are opaque.  ``fn`` maps a *base* value to
    this level's value — levels always map from the base, never from
    each other, so a lattice node never depends on another node's
    representation.
    """

    name: str
    depth: int
    fn: Callable[[Any], Any] = field(compare=False)
    dtype: Optional[DimType] = None

    @property
    def is_base(self) -> bool:
        return self.depth == 0

    @property
    def is_all(self) -> bool:
        return self.name == ALL_LEVEL


def _identity(value: Any) -> Any:
    return value


def _to_all(_value: Any) -> Any:
    return ALL


@dataclass(frozen=True)
class DimHierarchy:
    """The ordered levels of one dimension, base first, ``all`` last."""

    dim: Dimension
    levels: Tuple[Level, ...]

    def level(self, name: str) -> Level:
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise OlapError(
            f"dimension {self.dim.name!r} has no level {name!r} "
            f"(levels: {', '.join(self.level_names)})"
        )

    @property
    def level_names(self) -> Tuple[str, ...]:
        return tuple(lvl.name for lvl in self.levels)

    def finer(self, name: str) -> Optional[Level]:
        """The next finer level, or None when ``name`` is the base."""
        lvl = self.level(name)
        if lvl.is_base:
            return None
        position = self.levels.index(lvl)
        return self.levels[position - 1]

    def coarser(self, name: str) -> Optional[Level]:
        """The next coarser level, or None when ``name`` is ``all``."""
        lvl = self.level(name)
        position = self.levels.index(lvl)
        if position == len(self.levels) - 1:
            return None
        return self.levels[position + 1]


def _grouping_fn(mapping: Dict) -> Callable[[Any], Any]:
    def grouped(value: Any) -> Any:
        return mapping.get(value, value)

    return grouped


def derive_hierarchy(
    dim: Dimension, groupings: Optional[Dict[str, Dict]] = None
) -> DimHierarchy:
    """The hierarchy of one dimension: base, derived levels, ``all``.

    Time dimensions take the calendar path of their frequency; flat
    dimensions take the declared ``groupings`` (level name -> value
    mapping, unmapped values passing through).
    """
    levels = [Level(dim.name, 0, _identity, dim.dtype)]
    if dim.dtype.is_time:
        if groupings:
            raise OlapError(
                f"time dimension {dim.name!r} derives its hierarchy from "
                f"the calendar; declared groupings are not allowed"
            )
        for depth, freq in enumerate(rollup_path(dim.dtype.freq), start=1):
            levels.append(
                Level(
                    freq.name.lower(),
                    depth,
                    _conversion_to(freq),
                    TIME(freq),
                )
            )
    else:
        for depth, (name, mapping) in enumerate(
            (groupings or {}).items(), start=1
        ):
            if name == ALL_LEVEL or name == dim.name:
                raise OlapError(
                    f"grouping name {name!r} collides with a built-in "
                    f"level of dimension {dim.name!r}"
                )
            levels.append(Level(name, depth, _grouping_fn(mapping)))
    levels.append(Level(ALL_LEVEL, len(levels), _to_all))
    return DimHierarchy(dim, tuple(levels))


def _conversion_to(freq) -> Callable[[Any], Any]:
    def to_freq(point):
        return convert(point, freq)

    return to_freq


def hierarchies_for(
    catalog: MetadataCatalog, name: str
) -> Tuple[DimHierarchy, ...]:
    """All dimension hierarchies of one cube, from the catalog.

    Time axes get their calendar hierarchy, flat axes their declared
    groupings — this is the single derivation point both the lattice
    and the query layer share.
    """
    schema: CubeSchema = catalog.schema_of(name)
    return tuple(
        derive_hierarchy(
            dim,
            None
            if dim.dtype.is_time
            else catalog.groupings_for(name, dim.name),
        )
        for dim in schema.dimensions
    )
