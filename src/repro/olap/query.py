"""The OLAP query service: slice/dice/roll-up/drill-down over lattices.

:class:`OlapService` keeps one live :class:`CubeLattice` per queryable
cube, refreshed eagerly after every engine commit, plus a cache of
*pinned* lattices built on demand from the :class:`VersionedStore` for
``as_of=run_id`` queries — historicity means any past run's data stays
queryable at the exact versions that run left behind
(``RunRecord.baseline_versions``).

Queries never touch CSVs or re-run a group-by: a point lookup is a dict
probe on the base node, a roll-up reads one node's groups, and a
cross-tab assembles four nodes (cells, row totals, column totals, grand
total — the sub-total semantics of Gray et al.'s ``ALL``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..model.catalog import MetadataCatalog
from .hierarchy import ALL_LEVEL, OlapError, hierarchies_for
from .lattice import CubeLattice, _group_sort_key

__all__ = ["QueryResult", "OlapService", "format_measure"]


def format_measure(value: float) -> str:
    """Compact, deterministic rendering of an aggregate value."""
    return f"{value:.6g}"


@dataclass
class QueryResult:
    """A relational query answer: named columns plus sorted rows."""

    columns: Tuple[str, ...]
    rows: List[Tuple]

    def to_text(self) -> str:
        """The result as an aligned text table."""
        rendered = [
            tuple(
                format_measure(part) if isinstance(part, float) else str(part)
                for part in row
            )
            for row in self.rows
        ]
        widths = [
            max(len(name), *(len(row[j]) for row in rendered), 0)
            if rendered
            else len(name)
            for j, name in enumerate(self.columns)
        ]
        lines = [
            "  ".join(
                name.ljust(w) for name, w in zip(self.columns, widths)
            ).rstrip()
        ]
        lines.append("  ".join("-" * w for w in widths))
        for row in rendered:
            lines.append(
                "  ".join(
                    part.ljust(w) for part, w in zip(row, widths)
                ).rstrip()
            )
        return "\n".join(lines)


class OlapService:
    """Lattice-backed OLAP queries over the catalog's versioned cubes."""

    def __init__(
        self,
        catalog: MetadataCatalog,
        runs=None,
        aggregate: Any = "sum",
        metrics=None,
        cubes: Optional[Iterable[str]] = None,
    ):
        self.catalog = catalog
        self.runs = runs
        self.aggregate = aggregate
        self.metrics = metrics
        #: restriction to a subset of cubes (None = every cube with data)
        self._cubes: Optional[Tuple[str, ...]] = (
            tuple(cubes) if cubes is not None else None
        )
        self._live: Dict[str, CubeLattice] = {}
        self._pinned: Dict[Tuple[str, int], CubeLattice] = {}

    # -- lattice management -------------------------------------------------
    def queryable_names(self) -> List[str]:
        names = (
            list(self._cubes)
            if self._cubes is not None
            else self.catalog.names()
        )
        return [name for name in names if self.catalog.has_data(name)]

    def _check_queryable(self, name: str) -> None:
        if name not in self.catalog:
            raise OlapError(f"unknown cube {name!r}")
        if self._cubes is not None and name not in self._cubes:
            raise OlapError(f"cube {name!r} is not enabled for OLAP queries")
        if not self.catalog.has_data(name):
            raise OlapError(f"cube {name!r} has no stored data")

    def _new_lattice(self, name: str) -> CubeLattice:
        return CubeLattice(
            name,
            hierarchies_for(self.catalog, name),
            aggregate=self.aggregate,
            metrics=self.metrics,
        )

    def lattice(self, name: str, as_of: Optional[int] = None) -> CubeLattice:
        """The lattice serving ``name`` — live, or pinned at a run.

        Live lattices follow the store head: a stale one is refreshed
        incrementally (dirty groups only) before answering.  Pinned
        lattices are built once from the versions recorded by run
        ``as_of`` and cached.
        """
        self._check_queryable(name)
        store = self.catalog.store
        if as_of is None:
            head = store.latest_version(name)
            live = self._live.get(name)
            if live is None:
                live = self._new_lattice(name)
                live.build(store.get(name), head)
                self._live[name] = live
            elif live.version != head:
                live.refresh(store.get(name), head)
            return live
        if self.runs is None:
            raise OlapError("as_of queries need a run log")
        record = self.runs.get(as_of)
        if record is None:
            raise OlapError(f"no run with id {as_of}")
        version = record.baseline_versions.get(name)
        if version is None:
            raise OlapError(
                f"run {as_of} recorded no version of cube {name!r}"
            )
        pinned = self._pinned.get((name, version))
        if pinned is None:
            pinned = self._new_lattice(name)
            pinned.build(store.get(name, version), version)
            self._pinned[(name, version)] = pinned
        return pinned

    def on_commit(self, record, committed: Optional[Dict[str, int]] = None) -> None:
        """Engine hook: bring every live lattice to the run's versions.

        Called after a run commits; ``committed`` (cube -> version, from
        the dispatcher) marks cubes the run wrote.  A cube the run did
        not write can still be stale here — ``engine.load()`` puts
        revised elementary data straight into the store — so a live
        lattice is only skipped when it already sits at the store head.
        Unbuilt lattices are built eagerly so the first query after a
        run never pays the group-by.
        """
        store = self.catalog.store
        for name in self.queryable_names():
            live = self._live.get(name)
            if (
                live is not None
                and committed is not None
                and name not in committed
                and live.version == store.latest_version(name)
            ):
                continue
            self.lattice(name)

    # -- queries ------------------------------------------------------------
    def point(
        self, name: str, coords: Dict[str, Any], as_of: Optional[int] = None
    ) -> float:
        """The measure at one fully specified base coordinate."""
        t0 = time.perf_counter()
        lattice = self.lattice(name, as_of)
        schema = self.catalog.schema_of(name)
        missing = [d for d in schema.dim_names if d not in coords]
        if missing:
            raise OlapError(
                f"point query on {name!r} missing coordinates: "
                f"{', '.join(missing)}"
            )
        extra = [d for d in coords if d not in schema.dim_names]
        if extra:
            raise OlapError(
                f"cube {name!r} has no dimension {extra[0]!r}"
            )
        key = tuple(coords[d] for d in schema.dim_names)
        base = lattice.nodes[
            tuple(h.levels[0].name for h in lattice.hierarchies)
        ]
        try:
            value = base.groups[key]
        except KeyError:
            raise OlapError(
                f"cube {name!r} is undefined at {key!r}"
            ) from None
        self._count("point", t0)
        return value

    def rollup(
        self,
        name: str,
        levels: Optional[Dict[str, str]] = None,
        as_of: Optional[int] = None,
    ) -> QueryResult:
        """Aggregates at one level choice; unnamed dimensions stay base."""
        t0 = time.perf_counter()
        lattice = self.lattice(name, as_of)
        node = lattice.node(levels or {})
        result = self._result_of(lattice, node)
        self._count("rollup", t0)
        return result

    def drilldown(
        self,
        name: str,
        levels: Dict[str, str],
        dim: str,
        as_of: Optional[int] = None,
    ) -> QueryResult:
        """One step finer along ``dim`` from the given level choice."""
        t0 = time.perf_counter()
        lattice = self.lattice(name, as_of)
        hierarchy = lattice.hierarchy(dim)
        current = levels.get(dim, hierarchy.levels[0].name)
        finer = hierarchy.finer(current)
        if finer is None:
            raise OlapError(
                f"dimension {dim!r} is already at its base level "
                f"{current!r}; cannot drill down"
            )
        refined = dict(levels)
        refined[dim] = finer.name
        node = lattice.node(refined)
        result = self._result_of(lattice, node)
        self._count("drilldown", t0)
        return result

    def slice_(
        self,
        name: str,
        fixed: Dict[str, Any],
        levels: Optional[Dict[str, str]] = None,
        as_of: Optional[int] = None,
    ) -> QueryResult:
        """Fix dimensions to single values and project them away."""
        t0 = time.perf_counter()
        lattice = self.lattice(name, as_of)
        node = lattice.node(levels or {})
        columns, positions = self._key_columns(lattice, node)
        for dim in fixed:
            if dim not in positions:
                raise OlapError(
                    f"cannot slice on {dim!r}: not a grouped dimension "
                    f"of this query"
                )
        fixed_pos = {positions[dim]: value for dim, value in fixed.items()}
        keep = [j for j in range(len(columns)) if j not in fixed_pos]
        rows = [
            tuple(key[j] for j in keep) + (value,)
            for key, value in node.groups.items()
            if all(key[j] == want for j, want in fixed_pos.items())
        ]
        rows.sort(key=lambda row: _group_sort_key(row[:-1]))
        result = QueryResult(
            tuple(columns[j] for j in keep) + (self._measure_name(lattice),),
            rows,
        )
        self._count("slice", t0)
        return result

    def dice(
        self,
        name: str,
        ranges: Dict[str, Iterable[Any]],
        levels: Optional[Dict[str, str]] = None,
        as_of: Optional[int] = None,
    ) -> QueryResult:
        """Filter dimensions to value sets, keeping all grouped columns."""
        t0 = time.perf_counter()
        lattice = self.lattice(name, as_of)
        node = lattice.node(levels or {})
        columns, positions = self._key_columns(lattice, node)
        for dim in ranges:
            if dim not in positions:
                raise OlapError(
                    f"cannot dice on {dim!r}: not a grouped dimension "
                    f"of this query"
                )
        wanted = {positions[dim]: set(vals) for dim, vals in ranges.items()}
        rows = [
            key + (value,)
            for key, value in node.groups.items()
            if all(key[j] in vals for j, vals in wanted.items())
        ]
        rows.sort(key=lambda row: _group_sort_key(row[:-1]))
        result = QueryResult(
            tuple(columns) + (self._measure_name(lattice),), rows
        )
        self._count("dice", t0)
        return result

    def crosstab(
        self,
        name: str,
        row_dim: str,
        col_dim: str,
        levels: Optional[Dict[str, str]] = None,
        as_of: Optional[int] = None,
    ) -> str:
        """A text cross-tab with row/column sub-totals and grand total.

        Cells come from the node grouping ``row_dim`` × ``col_dim`` at
        the requested levels (every other dimension collapsed to all);
        the sub-totals and the grand total come from the three coarser
        nodes of the same lattice — they are maintained aggregates, not
        sums of the printed cells.
        """
        t0 = time.perf_counter()
        if row_dim == col_dim:
            raise OlapError("cross-tab needs two distinct dimensions")
        lattice = self.lattice(name, as_of)
        levels = dict(levels or {})
        schema = self.catalog.schema_of(name)
        collapse = {
            d: ALL_LEVEL
            for d in schema.dim_names
            if d not in (row_dim, col_dim)
        }
        base_choice = {**collapse}
        for dim in (row_dim, col_dim):
            if dim in levels:
                base_choice[dim] = levels[dim]
        cells = lattice.node(base_choice)
        row_totals = lattice.node({**base_choice, col_dim: ALL_LEVEL})
        col_totals = lattice.node({**base_choice, row_dim: ALL_LEVEL})
        grand = lattice.node({**collapse, row_dim: ALL_LEVEL, col_dim: ALL_LEVEL})
        # group keys order by schema dimension position
        row_first = schema.dim_index(row_dim) < schema.dim_index(col_dim)
        table: Dict[Any, Dict[Any, float]] = {}
        col_values: Dict[Any, None] = {}
        for key, value in cells.groups.items():
            r, c = key if row_first else (key[1], key[0])
            table.setdefault(r, {})[c] = value
            col_values[c] = None
        rows_sorted = sorted(table, key=lambda v: _group_sort_key((v,)))
        cols_sorted = sorted(col_values, key=lambda v: _group_sort_key((v,)))
        header = [row_dim, *map(str, cols_sorted), "total"]
        body: List[List[str]] = []
        for r in rows_sorted:
            line = [str(r)]
            for c in cols_sorted:
                cell = table[r].get(c)
                line.append("." if cell is None else format_measure(cell))
            line.append(format_measure(row_totals.groups[(r,)]))
            body.append(line)
        footer = ["total"]
        for c in cols_sorted:
            footer.append(format_measure(col_totals.groups[(c,)]))
        footer.append(format_measure(grand.groups.get((), float("nan"))))
        body.append(footer)
        widths = [
            max(len(header[j]), *(len(line[j]) for line in body))
            for j in range(len(header))
        ]
        lines = [
            "  ".join(part.ljust(w) for part, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for line in body:
            lines.append(
                "  ".join(part.rjust(w) for part, w in zip(line, widths))
            )
        self._count("crosstab", t0)
        return "\n".join(lines)

    # -- helpers ------------------------------------------------------------
    def _result_of(self, lattice: CubeLattice, node) -> QueryResult:
        columns, _ = self._key_columns(lattice, node)
        rows = [
            key + (value,)
            for key, value in sorted(
                node.groups.items(), key=lambda kv: _group_sort_key(kv[0])
            )
        ]
        return QueryResult(
            tuple(columns) + (self._measure_name(lattice),), rows
        )

    def _key_columns(self, lattice: CubeLattice, node):
        """Column labels of a node's group key + dim -> key position."""
        columns: List[str] = []
        positions: Dict[str, int] = {}
        for hierarchy, lvl in zip(lattice.hierarchies, node.levels):
            if lvl.is_all:
                continue
            positions[hierarchy.dim.name] = len(columns)
            if lvl.is_base:
                columns.append(hierarchy.dim.name)
            else:
                columns.append(f"{hierarchy.dim.name}:{lvl.name}")
        return columns, positions

    def _measure_name(self, lattice: CubeLattice) -> str:
        return lattice.agg_name or "aggregate"

    def _count(self, kind: str, t0: float) -> None:
        if self.metrics is not None:
            self.metrics.inc(f"olap.query.{kind}")
            self.metrics.observe("olap.query.s", time.perf_counter() - t0)
