"""Recursive-descent parser for the SQL dialect."""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..errors import SqlSyntaxError
from ..model.time import parse_timepoint
from .lexer import SqlToken, tokenize_sql
from .sqlast import (
    Between,
    Binary,
    CaseWhen,
    ColumnDef,
    ColumnRef,
    CreateTable,
    CreateView,
    Delete,
    Drop,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    SqlExpr,
    SubquerySource,
    TableFuncRef,
    TableRef,
    Unary,
    Update,
)

__all__ = ["parse_sql", "parse_sql_script"]


class _SqlParser:
    def __init__(self, tokens: List[SqlToken]):
        self._tokens = tokens
        self._pos = 0

    # -- helpers -----------------------------------------------------------
    def _peek(self) -> SqlToken:
        return self._tokens[self._pos]

    def _advance(self) -> SqlToken:
        token = self._tokens[self._pos]
        if token.type != "EOF":
            self._pos += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.type == "KEYWORD" and token.value in words

    def _at_punct(self, *symbols: str) -> bool:
        token = self._peek()
        return token.type == "PUNCT" and token.value in symbols

    def _accept_keyword(self, *words: str) -> Optional[str]:
        if self._at_keyword(*words):
            return self._advance().value
        return None

    def _accept_punct(self, *symbols: str) -> Optional[str]:
        if self._at_punct(*symbols):
            return self._advance().value
        return None

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise SqlSyntaxError(f"expected {word}, found {self._peek().value!r}")

    def _expect_punct(self, symbol: str) -> None:
        if not self._accept_punct(symbol):
            raise SqlSyntaxError(f"expected {symbol!r}, found {self._peek().value!r}")

    def _ident(self, what: str = "an identifier") -> str:
        token = self._peek()
        if token.type == "IDENT":
            return self._advance().value
        raise SqlSyntaxError(f"expected {what}, found {token.value!r}")

    # -- statements -----------------------------------------------------------
    def parse_statement(self):
        if self._at_keyword("SELECT"):
            return self._select()
        if self._at_keyword("INSERT"):
            return self._insert()
        if self._at_keyword("CREATE"):
            return self._create()
        if self._at_keyword("UPDATE"):
            return self._update()
        if self._at_keyword("DELETE"):
            return self._delete()
        if self._at_keyword("DROP"):
            return self._drop()
        raise SqlSyntaxError(f"unexpected start of statement: {self._peek().value!r}")

    def parse_script(self) -> List:
        statements = []
        while self._peek().type != "EOF":
            statements.append(self.parse_statement())
            while self._accept_punct(";"):
                pass
        return statements

    def finish(self) -> None:
        self._accept_punct(";")
        token = self._peek()
        if token.type != "EOF":
            raise SqlSyntaxError(f"trailing input at {token.value!r}")

    # -- SELECT ------------------------------------------------------------
    def _select(self) -> Select:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        items: List[SelectItem] = []
        if self._accept_punct("*"):
            pass  # empty items tuple = SELECT *
        else:
            items.append(self._select_item())
            while self._accept_punct(","):
                items.append(self._select_item())
        self._expect_keyword("FROM")
        sources = [self._from_item()]
        joins: List[Join] = []
        while True:
            if self._accept_punct(","):
                sources.append(self._from_item())
                continue
            if self._at_keyword("JOIN", "INNER", "LEFT"):
                kind = "INNER"
                if self._accept_keyword("LEFT"):
                    self._accept_keyword("OUTER")
                    kind = "LEFT"
                else:
                    self._accept_keyword("INNER")
                self._expect_keyword("JOIN")
                source = self._from_item()
                self._expect_keyword("ON")
                joins.append(Join(source, self._expr(), kind))
                continue
            break
        where = self._expr() if self._accept_keyword("WHERE") else None
        group_by: List[SqlExpr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expr())
            while self._accept_punct(","):
                group_by.append(self._expr())
        having = self._expr() if self._accept_keyword("HAVING") else None
        order_by: List[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._advance()
            if token.type != "NUMBER" or not isinstance(token.value, int):
                raise SqlSyntaxError("LIMIT needs an integer")
            limit = token.value
        return Select(
            items, sources, joins, where, group_by, having, order_by, limit, distinct
        )

    def _select_item(self) -> SelectItem:
        expr = self._expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._ident("an alias")
        elif self._peek().type == "IDENT":
            alias = self._advance().value
        return SelectItem(expr, alias)

    def _order_item(self) -> OrderItem:
        expr = self._expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr, descending)

    def _from_item(self) -> Union[TableRef, TableFuncRef, SubquerySource]:
        if self._accept_punct("("):
            select = self._select()
            self._expect_punct(")")
            alias = self._optional_alias()
            if alias is None:
                raise SqlSyntaxError("a derived table needs an alias")
            return SubquerySource(select, alias)
        name = self._ident("a table name")
        if self._accept_punct("("):
            args: List = []
            if not self._at_punct(")"):
                while True:
                    args.append(self._table_func_arg())
                    if not self._accept_punct(","):
                        break
            self._expect_punct(")")
            alias = self._optional_alias()
            return TableFuncRef(name, args, alias)
        alias = self._optional_alias()
        return TableRef(name, alias)

    def _table_func_arg(self):
        token = self._peek()
        if token.type == "IDENT":
            return self._advance().value  # a table name
        if token.type == "NUMBER":
            return Literal(self._advance().value)
        if token.type == "STRING":
            return Literal(self._advance().value)
        raise SqlSyntaxError(
            f"tabular function arguments must be table names or literals, "
            f"found {token.value!r}"
        )

    def _optional_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._ident("an alias")
        if self._peek().type == "IDENT":
            return self._advance().value
        return None

    # -- INSERT / DDL / DELETE -------------------------------------------------
    def _insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._ident("a table name")
        columns: List[str] = []
        if self._accept_punct("("):
            columns.append(self._ident("a column name"))
            while self._accept_punct(","):
                columns.append(self._ident("a column name"))
            self._expect_punct(")")
        if self._accept_keyword("VALUES"):
            rows = [self._value_tuple()]
            while self._accept_punct(","):
                rows.append(self._value_tuple())
            return Insert(table, columns, rows, None)
        if self._at_keyword("SELECT"):
            return Insert(table, columns, (), self._select())
        raise SqlSyntaxError("INSERT needs VALUES or SELECT")

    def _value_tuple(self) -> Tuple[SqlExpr, ...]:
        self._expect_punct("(")
        exprs = [self._expr()]
        while self._accept_punct(","):
            exprs.append(self._expr())
        self._expect_punct(")")
        return tuple(exprs)

    def _create(self):
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            if_not_exists = False
            if self._accept_keyword("IF"):
                self._expect_keyword("NOT")
                self._expect_keyword("EXISTS")
                if_not_exists = True
            name = self._ident("a table name")
            self._expect_punct("(")
            columns = [self._column_def()]
            while self._accept_punct(","):
                columns.append(self._column_def())
            self._expect_punct(")")
            return CreateTable(name, columns, if_not_exists)
        if self._accept_keyword("VIEW"):
            name = self._ident("a view name")
            self._expect_keyword("AS")
            return CreateView(name, self._select())
        raise SqlSyntaxError("CREATE supports TABLE and VIEW")

    def _column_def(self) -> ColumnDef:
        name = self._ident("a column name")
        token = self._peek()
        if token.type == "KEYWORD" and token.value == "TIME":
            self._advance()
            return ColumnDef(name, "TIME")
        type_name = self._ident("a column type")
        return ColumnDef(name, type_name)

    def _update(self) -> Update:
        self._expect_keyword("UPDATE")
        table = self._ident("a table name")
        self._expect_keyword("SET")
        assignments = [self._set_clause()]
        while self._accept_punct(","):
            assignments.append(self._set_clause())
        where = self._expr() if self._accept_keyword("WHERE") else None
        return Update(table, assignments, where)

    def _set_clause(self):
        column = self._ident("a column name")
        self._expect_punct("=")
        return (column, self._expr())

    def _delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._ident("a table name")
        where = self._expr() if self._accept_keyword("WHERE") else None
        return Delete(table, where)

    def _drop(self) -> Drop:
        self._expect_keyword("DROP")
        kind = "TABLE"
        if self._accept_keyword("VIEW"):
            kind = "VIEW"
        else:
            self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        return Drop(self._ident("a name"), kind, if_exists)

    # -- expressions ----------------------------------------------------------
    def _expr(self) -> SqlExpr:
        return self._or_expr()

    def _or_expr(self) -> SqlExpr:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = Binary("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> SqlExpr:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = Binary("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> SqlExpr:
        if self._accept_keyword("NOT"):
            return Unary("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> SqlExpr:
        left = self._additive()
        if self._accept_keyword("IS"):
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return IsNull(left, negated)
        negated = False
        if self._at_keyword("NOT"):
            lookahead = self._tokens[self._pos + 1]
            if lookahead.type == "KEYWORD" and lookahead.value in ("IN", "BETWEEN"):
                self._advance()
                negated = True
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            items = [self._expr()]
            while self._accept_punct(","):
                items.append(self._expr())
            self._expect_punct(")")
            return InList(left, items, negated)
        if self._accept_keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return Between(left, low, high, negated)
        if negated:
            raise SqlSyntaxError("dangling NOT before a comparison")
        for op in ("<=", ">=", "<>", "=", "<", ">"):
            if self._accept_punct(op):
                return Binary(op, left, self._additive())
        return left

    def _additive(self) -> SqlExpr:
        left = self._multiplicative()
        while True:
            if self._accept_punct("+"):
                left = Binary("+", left, self._multiplicative())
            elif self._accept_punct("-"):
                left = Binary("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> SqlExpr:
        left = self._unary()
        while True:
            if self._accept_punct("*"):
                left = Binary("*", left, self._unary())
            elif self._accept_punct("/"):
                left = Binary("/", left, self._unary())
            elif self._accept_punct("%"):
                left = Binary("%", left, self._unary())
            else:
                return left

    def _unary(self) -> SqlExpr:
        if self._accept_punct("-"):
            return Unary("-", self._unary())
        return self._primary()

    def _primary(self) -> SqlExpr:
        token = self._peek()
        if token.type == "NUMBER":
            self._advance()
            return Literal(token.value)
        if token.type == "STRING":
            self._advance()
            return Literal(token.value)
        if self._accept_keyword("NULL"):
            return Literal(None)
        if self._at_keyword("TIME"):
            self._advance()
            literal = self._peek()
            if literal.type != "STRING":
                raise SqlSyntaxError("TIME literal needs a string: TIME '2020Q1'")
            self._advance()
            return Literal(parse_timepoint(literal.value))
        if self._accept_keyword("CASE"):
            return self._case()
        if self._accept_punct("("):
            inner = self._expr()
            self._expect_punct(")")
            return inner
        if token.type == "IDENT":
            name = self._advance().value
            if self._accept_punct("("):
                return self._func_call(name)
            if self._accept_punct("."):
                column = self._ident("a column name")
                return ColumnRef(column, name)
            return ColumnRef(name)
        raise SqlSyntaxError(f"expected an expression, found {token.value!r}")

    def _func_call(self, name: str) -> FuncCall:
        if self._accept_punct("*"):
            self._expect_punct(")")
            return FuncCall(name, (), star=True)
        args: List[SqlExpr] = []
        if not self._at_punct(")"):
            args.append(self._expr())
            while self._accept_punct(","):
                args.append(self._expr())
        self._expect_punct(")")
        return FuncCall(name, args)

    def _case(self) -> CaseWhen:
        whens = []
        while self._accept_keyword("WHEN"):
            condition = self._expr()
            self._expect_keyword("THEN")
            whens.append((condition, self._expr()))
        if not whens:
            raise SqlSyntaxError("CASE needs at least one WHEN")
        otherwise = self._expr() if self._accept_keyword("ELSE") else None
        self._expect_keyword("END")
        return CaseWhen(tuple(whens), otherwise)


def parse_sql(text: str):
    """Parse a single SQL statement."""
    parser = _SqlParser(tokenize_sql(text))
    statement = parser.parse_statement()
    parser.finish()
    return statement


def parse_sql_script(text: str) -> List:
    """Parse a ``;``-separated script into a statement list."""
    return _SqlParser(tokenize_sql(text)).parse_script()
