"""A from-scratch mini relational engine (the DBMS target of Section 5.1).

Supports the dialect the SQL backend emits: CREATE TABLE/VIEW, INSERT
(VALUES and SELECT), SELECT with joins, WHERE, GROUP BY aggregation,
tabular functions in FROM, ORDER BY/LIMIT/DISTINCT, DELETE and DROP,
with user-definable scalar/aggregate/tabular functions and a native
TIME column type.
"""

from .database import Database
from .executor import QueryResult, SelectExecutor
from .functions import FunctionRegistry, TabularFunction, default_functions
from .parser import parse_sql, parse_sql_script
from .table import Column, Table
from .values import SqlType, sql_repr

__all__ = [
    "Database",
    "QueryResult",
    "SelectExecutor",
    "FunctionRegistry",
    "TabularFunction",
    "default_functions",
    "parse_sql",
    "parse_sql_script",
    "Column",
    "Table",
    "SqlType",
    "sql_repr",
]
