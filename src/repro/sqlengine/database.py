"""The Database facade: catalog + SQL entry point.

``Database.execute`` accepts one SQL statement (text) and dispatches to
the executor; ``execute_script`` runs a ``;``-separated script — which
is exactly what the SQL backend feeds it.  Views are stored as parsed
SELECTs and expanded on reference.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import SqlExecutionError
from .executor import QueryResult, RowEnv, SelectExecutor
from .functions import FunctionRegistry, default_functions
from .parser import parse_sql, parse_sql_script
from .sqlast import (
    CreateTable,
    CreateView,
    Delete,
    Drop,
    Insert,
    Select,
    Update,
)
from .table import Column, Table
from .values import SqlType

__all__ = ["Database"]


class Database:
    """An in-memory relational database with a SQL interface."""

    def __init__(self, functions: Optional[FunctionRegistry] = None):
        self._tables: Dict[str, Table] = {}
        self._views: Dict[str, Select] = {}
        self.functions = functions or default_functions()

    # -- catalog ---------------------------------------------------------
    def create_table(self, name: str, columns: Sequence[Column]) -> Table:
        key = name.lower()
        if key in self._tables or key in self._views:
            raise SqlExecutionError(f"table or view {name} already exists")
        table = Table(name, columns)
        self._tables[key] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SqlExecutionError(f"no such table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def table_names(self) -> List[str]:
        return [t.name for t in self._tables.values()]

    def resolve(self, name: str) -> Table:
        """A table, or a view materialized on the fly."""
        key = name.lower()
        if key in self._tables:
            return self._tables[key]
        if key in self._views:
            result = self._select(self._views[key])
            columns = [Column(c, _infer_type(result, i)) for i, c in enumerate(result.columns)]
            view_table = Table(name, columns)
            view_table.insert_many(result.rows)
            return view_table
        raise SqlExecutionError(f"no such table or view {name!r}")

    # -- SQL entry points --------------------------------------------------
    def execute(self, sql: str) -> Union[QueryResult, int, None]:
        """Run one statement.

        Returns a :class:`QueryResult` for SELECT, a row count for
        INSERT/DELETE, and ``None`` for DDL.
        """
        return self._dispatch(parse_sql(sql))

    def execute_script(self, sql: str) -> List[Union[QueryResult, int, None]]:
        """Run a ``;``-separated script; returns one result per statement."""
        return [self._dispatch(s) for s in parse_sql_script(sql)]

    def query(self, sql: str) -> QueryResult:
        result = self.execute(sql)
        if not isinstance(result, QueryResult):
            raise SqlExecutionError("query() expects a SELECT statement")
        return result

    # -- dispatch ---------------------------------------------------------------
    def _dispatch(self, statement) -> Union[QueryResult, int, None]:
        if isinstance(statement, Select):
            return self._select(statement)
        if isinstance(statement, Insert):
            return self._insert(statement)
        if isinstance(statement, CreateTable):
            return self._create_table(statement)
        if isinstance(statement, CreateView):
            return self._create_view(statement)
        if isinstance(statement, Update):
            return self._update(statement)
        if isinstance(statement, Delete):
            return self._delete(statement)
        if isinstance(statement, Drop):
            return self._drop(statement)
        raise SqlExecutionError(f"unsupported statement {type(statement).__name__}")

    def _select(self, select: Select) -> QueryResult:
        executor = SelectExecutor(self.resolve, self.functions)
        return executor.execute(select)

    def _insert(self, insert: Insert) -> int:
        table = self.table(insert.table)
        if insert.columns:
            positions = [table.column_index(c) for c in insert.columns]
            if len(set(positions)) != len(positions):
                raise SqlExecutionError("duplicate columns in INSERT")
        else:
            positions = list(range(len(table.columns)))

        def place(values: Sequence[Any]) -> List[Any]:
            if len(values) != len(positions):
                raise SqlExecutionError(
                    f"INSERT supplies {len(values)} values for {len(positions)} "
                    f"columns"
                )
            row: List[Any] = [None] * len(table.columns)
            for position, value in zip(positions, values):
                row[position] = value
            return row

        if insert.select is not None:
            result = self._select(insert.select)
            count = 0
            for row in result.rows:
                table.insert(place(row))
                count += 1
            return count
        executor = SelectExecutor(self.resolve, self.functions)
        empty = RowEnv({})
        count = 0
        for value_tuple in insert.values:
            values = [executor._eval(e, empty) for e in value_tuple]
            table.insert(place(values))
            count += 1
        return count

    def _create_table(self, ddl: CreateTable) -> None:
        if ddl.if_not_exists and ddl.name.lower() in self._tables:
            return None
        columns = [Column(c.name, SqlType.parse(c.type_name)) for c in ddl.columns]
        self.create_table(ddl.name, columns)
        return None

    def _create_view(self, ddl: CreateView) -> None:
        key = ddl.name.lower()
        if key in self._tables or key in self._views:
            raise SqlExecutionError(f"table or view {ddl.name} already exists")
        self._views[key] = ddl.select
        return None

    def _update(self, update: Update) -> int:
        from .values import check_type

        table = self.table(update.table)
        executor = SelectExecutor(self.resolve, self.functions)
        colmap = {c.name.lower(): i for i, c in enumerate(table.columns)}
        positions = [table.column_index(col) for col, _expr in update.assignments]
        changed = 0
        new_rows = []
        for row in table.rows:
            env = RowEnv({table.name: (colmap, row)})
            hit = update.where is None or executor._eval(update.where, env) is True
            if not hit:
                new_rows.append(row)
                continue
            updated = list(row)
            for position, (column, expr) in zip(positions, update.assignments):
                value = executor._eval(expr, env)
                updated[position] = check_type(
                    table.columns[position].sql_type,
                    value,
                    f"{table.name}.{column}",
                )
            new_rows.append(tuple(updated))
            changed += 1
        table.rows = new_rows
        return changed

    def _delete(self, delete: Delete) -> int:
        table = self.table(delete.table)
        if delete.where is None:
            count = len(table.rows)
            table.truncate()
            return count
        executor = SelectExecutor(self.resolve, self.functions)
        colmap = {c.name.lower(): i for i, c in enumerate(table.columns)}
        kept = []
        removed = 0
        for row in table.rows:
            env = RowEnv({table.name: (colmap, row)})
            if executor._eval(delete.where, env) is True:
                removed += 1
            else:
                kept.append(row)
        table.rows = kept
        return removed

    def _drop(self, drop: Drop) -> None:
        key = drop.name.lower()
        store = self._views if drop.kind == "VIEW" else self._tables
        if key not in store:
            if drop.if_exists:
                return None
            raise SqlExecutionError(f"no such {drop.kind.lower()} {drop.name!r}")
        del store[key]
        return None


def _infer_type(result: QueryResult, index: int) -> SqlType:
    """Best-effort column type for a materialized view."""
    from ..model.time import TimePoint

    for row in result.rows:
        value = row[index]
        if value is None:
            continue
        if isinstance(value, TimePoint):
            return SqlType.TIME
        if isinstance(value, str):
            return SqlType.TEXT
        if isinstance(value, int):
            return SqlType.INTEGER
        return SqlType.REAL
    return SqlType.REAL
