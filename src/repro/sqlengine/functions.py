"""Function registries of the mini SQL engine.

Three kinds, matching Section 5.1's taxonomy:

* *scalar* functions — "any system (or user) defined stored function
  implementing any scalar function", used in tuple-level calculations;
* *aggregate* functions — used with GROUP BY;
* *tabular* functions — "take in input one or more tables and return
  another table", the extended-dialect feature tgd (4) relies on
  (``SELECT … FROM STL_T(GDP)``).

The statistical add-ons (STL components etc.) are registered by the
SQL backend from the EXL operator registry; the built-ins here are the
calendar and numeric functions any engine ships.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Sequence

from ..errors import SqlExecutionError
from ..model.time import Frequency, TimePoint, convert
from ..stats import aggregates as _agg
from .table import Table

__all__ = ["FunctionRegistry", "TabularFunction", "default_functions"]


@dataclass
class TabularFunction:
    """A registered tabular function.

    ``impl`` receives the input tables (in argument order) and the
    scalar arguments, and returns a :class:`Table` (the name is
    ignored; callers alias it).
    """

    name: str
    impl: Callable[..., Table]
    doc: str = ""


class FunctionRegistry:
    """Scalar, aggregate and tabular function namespaces."""

    def __init__(self):
        self._scalar: Dict[str, Callable] = {}
        self._aggregate: Dict[str, Callable[[Sequence[Any]], Any]] = {}
        self._tabular: Dict[str, TabularFunction] = {}

    # -- registration ---------------------------------------------------
    def register_scalar(self, name: str, impl: Callable) -> None:
        self._scalar[name.lower()] = impl

    def register_aggregate(self, name: str, impl: Callable) -> None:
        self._aggregate[name.lower()] = impl

    def register_tabular(self, name: str, impl: Callable, doc: str = "") -> None:
        self._tabular[name.lower()] = TabularFunction(name, impl, doc)

    # -- lookup --------------------------------------------------------------
    def scalar(self, name: str) -> Callable:
        try:
            return self._scalar[name.lower()]
        except KeyError:
            raise SqlExecutionError(f"unknown scalar function {name!r}") from None

    def aggregate(self, name: str) -> Callable:
        try:
            return self._aggregate[name.lower()]
        except KeyError:
            raise SqlExecutionError(f"unknown aggregate function {name!r}") from None

    def tabular(self, name: str) -> TabularFunction:
        try:
            return self._tabular[name.lower()]
        except KeyError:
            raise SqlExecutionError(f"unknown tabular function {name!r}") from None

    def is_aggregate(self, name: str) -> bool:
        return name.lower() in self._aggregate

    def is_scalar(self, name: str) -> bool:
        return name.lower() in self._scalar

    def is_tabular(self, name: str) -> bool:
        return name.lower() in self._tabular


def _null_guard(fn: Callable) -> Callable:
    """SQL scalar functions return NULL on NULL input."""

    def guarded(*args):
        if any(a is None for a in args):
            return None
        return fn(*args)

    return guarded


def _agg_skip_nulls(fn: Callable[[Sequence[float]], float]) -> Callable:
    """SQL aggregates ignore NULLs; empty bags yield NULL."""

    def wrapped(values: Sequence[Any]) -> Any:
        filtered = [v for v in values if v is not None]
        if not filtered:
            return None
        return fn(filtered)

    return wrapped


def _time_convert(freq: Frequency) -> Callable:
    def conv(value):
        if not isinstance(value, TimePoint):
            raise SqlExecutionError(f"calendar function applied to {value!r}")
        return convert(value, freq)

    return conv


def _timeshift(value, periods):
    if not isinstance(value, TimePoint):
        raise SqlExecutionError(f"TIMESHIFT applied to non-time value {value!r}")
    return value.shift(int(periods))


def default_functions() -> FunctionRegistry:
    """The built-in function set."""
    registry = FunctionRegistry()
    scalars = {
        "abs": abs,
        "ln": lambda v: math.log(v),
        "log": lambda v, base=math.e: math.log(v, base),
        "exp": math.exp,
        "sqrt": math.sqrt,
        "sin": math.sin,
        "cos": math.cos,
        "round": lambda v, nd=0: round(v, int(nd)),
        "pow": lambda v, e: v**e,
        "power": lambda v, e: v**e,
        "coalesce": None,  # handled specially below
        "quarter": _time_convert(Frequency.QUARTER),
        "month": _time_convert(Frequency.MONTH),
        "year": _time_convert(Frequency.YEAR),
        "week": _time_convert(Frequency.WEEK),
        "timeshift": _timeshift,
    }
    for name, impl in scalars.items():
        if impl is not None:
            registry.register_scalar(name, _null_guard(impl))

    def coalesce(*args):
        for arg in args:
            if arg is not None:
                return arg
        return None

    registry.register_scalar("coalesce", coalesce)

    for name, impl in _agg.AGGREGATES.items():
        registry.register_aggregate(name, _agg_skip_nulls(impl))
    # SQL spells a couple of these differently
    registry.register_aggregate("stddev_pop", _agg_skip_nulls(_agg.agg_stddev))
    registry.register_aggregate("var_pop", _agg_skip_nulls(_agg.agg_var))

    return registry
