"""AST for the SQL dialect emitted by the SQL backend.

The dialect covers exactly what Section 5.1 needs — ``INSERT INTO …
SELECT`` with joins, ``GROUP BY`` aggregation, and tabular functions in
``FROM`` — plus the usual DDL/DML conveniences (CREATE TABLE/VIEW,
INSERT VALUES, DELETE, DROP, ORDER BY, LIMIT) so the engine is usable
as a standalone mini DBMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

__all__ = [
    "SqlExpr",
    "Literal",
    "ColumnRef",
    "Unary",
    "Binary",
    "FuncCall",
    "CaseWhen",
    "IsNull",
    "InList",
    "Between",
    "SelectItem",
    "SubquerySource",
    "TableRef",
    "TableFuncRef",
    "Join",
    "OrderItem",
    "Select",
    "Insert",
    "Update",
    "CreateTable",
    "CreateView",
    "Delete",
    "Drop",
    "ColumnDef",
]


class SqlExpr:
    """Base class of SQL scalar expressions."""


@dataclass(frozen=True)
class Literal(SqlExpr):
    value: Any  # None = NULL


@dataclass(frozen=True)
class ColumnRef(SqlExpr):
    name: str
    qualifier: Optional[str] = None  # table alias

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Unary(SqlExpr):
    op: str  # '-', 'NOT'
    operand: SqlExpr


@dataclass(frozen=True)
class Binary(SqlExpr):
    op: str  # arithmetic + - * / %, comparison = <> < <= > >=, AND, OR
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class FuncCall(SqlExpr):
    name: str
    args: Tuple[SqlExpr, ...]
    star: bool = False  # COUNT(*)

    def __init__(self, name: str, args=(), star: bool = False):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "star", star)


@dataclass(frozen=True)
class CaseWhen(SqlExpr):
    whens: Tuple[Tuple[SqlExpr, SqlExpr], ...]  # (condition, result)
    otherwise: Optional[SqlExpr] = None


@dataclass(frozen=True)
class IsNull(SqlExpr):
    operand: SqlExpr
    negated: bool = False


@dataclass(frozen=True)
class InList(SqlExpr):
    """``expr [NOT] IN (v1, v2, …)``."""

    operand: SqlExpr
    items: Tuple[SqlExpr, ...]
    negated: bool = False

    def __init__(self, operand, items, negated=False):
        object.__setattr__(self, "operand", operand)
        object.__setattr__(self, "items", tuple(items))
        object.__setattr__(self, "negated", negated)


@dataclass(frozen=True)
class Between(SqlExpr):
    """``expr [NOT] BETWEEN low AND high`` (inclusive)."""

    operand: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool = False


@dataclass(frozen=True)
class SelectItem:
    expr: SqlExpr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A plain table (or view) in FROM, with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubquerySource:
    """A derived table in FROM: ``(SELECT …) alias``."""

    select: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass(frozen=True)
class TableFuncRef:
    """A tabular function in FROM: ``STL_T(GDP, 4) alias``."""

    name: str
    args: Tuple[Any, ...]  # table names (str) or Literal scalars
    alias: Optional[str] = None

    def __init__(self, name: str, args=(), alias=None):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "alias", alias)

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    """An explicit ``[LEFT] JOIN … ON`` clause attached to a FROM item."""

    source: Union[TableRef, TableFuncRef]
    condition: SqlExpr
    kind: str = "INNER"  # INNER or LEFT


@dataclass(frozen=True)
class OrderItem:
    expr: SqlExpr
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: Tuple[SelectItem, ...]  # empty tuple means SELECT *
    sources: Tuple[Union[TableRef, TableFuncRef], ...]
    joins: Tuple[Join, ...] = ()
    where: Optional[SqlExpr] = None
    group_by: Tuple[SqlExpr, ...] = ()
    having: Optional[SqlExpr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False

    def __init__(
        self,
        items,
        sources,
        joins=(),
        where=None,
        group_by=(),
        having=None,
        order_by=(),
        limit=None,
        distinct=False,
    ):
        object.__setattr__(self, "items", tuple(items))
        object.__setattr__(self, "sources", tuple(sources))
        object.__setattr__(self, "joins", tuple(joins))
        object.__setattr__(self, "where", where)
        object.__setattr__(self, "group_by", tuple(group_by))
        object.__setattr__(self, "having", having)
        object.__setattr__(self, "order_by", tuple(order_by))
        object.__setattr__(self, "limit", limit)
        object.__setattr__(self, "distinct", distinct)


@dataclass(frozen=True)
class Insert:
    table: str
    columns: Tuple[str, ...]  # empty = positional
    values: Tuple[Tuple[SqlExpr, ...], ...] = ()  # VALUES form
    select: Optional[Select] = None  # INSERT ... SELECT form

    def __init__(self, table, columns=(), values=(), select=None):
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "values", tuple(tuple(v) for v in values))
        object.__setattr__(self, "select", select)


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: Tuple[ColumnDef, ...]
    if_not_exists: bool = False

    def __init__(self, name, columns, if_not_exists=False):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "if_not_exists", if_not_exists)


@dataclass(frozen=True)
class CreateView:
    name: str
    select: Select


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Tuple[Tuple[str, SqlExpr], ...]  # (column, expr)
    where: Optional[SqlExpr] = None

    def __init__(self, table, assignments, where=None):
        object.__setattr__(self, "table", table)
        object.__setattr__(
            self, "assignments", tuple(tuple(a) for a in assignments)
        )
        object.__setattr__(self, "where", where)


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[SqlExpr] = None


@dataclass(frozen=True)
class Drop:
    name: str
    kind: str = "TABLE"  # TABLE or VIEW
    if_exists: bool = False
