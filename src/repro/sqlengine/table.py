"""Tables: the storage layer of the mini relational engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from ..errors import SqlExecutionError
from .values import SqlType, check_type

__all__ = ["Column", "Table"]


@dataclass(frozen=True)
class Column:
    name: str
    sql_type: SqlType

    def __str__(self) -> str:
        return f"{self.name} {self.sql_type.value}"


class Table:
    """A named, typed, ordered bag of rows."""

    def __init__(self, name: str, columns: Sequence[Column]):
        names = [c.name for c in columns]
        if len(set(n.lower() for n in names)) != len(names):
            raise SqlExecutionError(f"duplicate column names in table {name}")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self.rows: List[Tuple[Any, ...]] = []

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for i, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return i
        raise SqlExecutionError(f"table {self.name} has no column {name!r}")

    def insert(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise SqlExecutionError(
                f"table {self.name} has {len(self.columns)} columns, row has "
                f"{len(row)}"
            )
        checked = tuple(
            check_type(col.sql_type, value, f"{self.name}.{col.name}")
            for col, value in zip(self.columns, row)
        )
        self.rows.append(checked)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def truncate(self) -> None:
        self.rows.clear()

    def copy_structure(self, new_name: Optional[str] = None) -> "Table":
        return Table(new_name or self.name, self.columns)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        cols = ", ".join(str(c) for c in self.columns)
        return f"Table({self.name}: {cols}; {len(self.rows)} rows)"
