"""SQL tokenizer.

Keywords are case-insensitive; identifiers keep their case (and can be
double-quoted to include unusual characters).  String literals use
single quotes with ``''`` escaping; ``TIME '2020Q1'`` literals are
recognized at the parser level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from ..errors import SqlSyntaxError

__all__ = ["SqlToken", "tokenize_sql", "KEYWORDS"]

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "INSERT", "INTO", "VALUES", "CREATE", "TABLE",
    "VIEW", "DROP", "DELETE", "JOIN", "INNER", "LEFT", "OUTER", "ON", "DISTINCT", "NULL",
    "IS", "CASE", "WHEN", "THEN", "ELSE", "END", "ASC", "DESC", "IF",
    "EXISTS", "TIME", "UPDATE", "SET", "IN", "BETWEEN",
}

_PUNCT = ["<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "+", "-", "*", "/", "%", ".", ";"]


@dataclass(frozen=True)
class SqlToken:
    type: str  # 'KEYWORD', 'IDENT', 'NUMBER', 'STRING', 'PUNCT', 'EOF'
    value: Any
    pos: int


def tokenize_sql(text: str) -> List[SqlToken]:
    tokens: List[SqlToken] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            start = i
            i += 1
            chars = []
            while i < n:
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        chars.append("'")
                        i += 2
                        continue
                    break
                chars.append(text[i])
                i += 1
            if i >= n:
                raise SqlSyntaxError(f"unterminated string at position {start}")
            i += 1
            tokens.append(SqlToken("STRING", "".join(chars), start))
            continue
        if ch == '"':
            start = i
            i += 1
            chars = []
            while i < n and text[i] != '"':
                chars.append(text[i])
                i += 1
            if i >= n:
                raise SqlSyntaxError(f"unterminated quoted identifier at {start}")
            i += 1
            tokens.append(SqlToken("IDENT", "".join(chars), start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = seen_exp = False
            while i < n:
                c = text[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # distinguish "1.5" from "t.x": dot must be followed by digit
                    if i + 1 < n and text[i + 1].isdigit():
                        seen_dot = True
                        i += 1
                    else:
                        break
                elif c in "eE" and not seen_exp and i > start:
                    seen_exp = True
                    i += 1
                    if i < n and text[i] in "+-":
                        i += 1
                else:
                    break
            literal = text[start:i]
            value = float(literal) if ("." in literal or "e" in literal.lower()) else int(literal)
            tokens.append(SqlToken("NUMBER", value, start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if word.upper() in KEYWORDS:
                tokens.append(SqlToken("KEYWORD", word.upper(), start))
            else:
                tokens.append(SqlToken("IDENT", word, start))
            continue
        matched = False
        for punct in _PUNCT:
            if text.startswith(punct, i):
                tokens.append(SqlToken("PUNCT", "<>" if punct == "!=" else punct, i))
                i += len(punct)
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(SqlToken("EOF", None, n))
    return tokens
