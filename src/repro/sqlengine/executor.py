"""Query executor of the mini relational engine.

Evaluation model: FROM builds a stream of *row environments* (one slot
per table binding), joins use hash indexes on extracted equi-join
conjuncts, WHERE filters, GROUP BY hash-aggregates, SELECT projects.
NULL follows SQL three-valued logic; arithmetic on TIME values
implements the shift semantics (``t + 1`` moves one period).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import SqlExecutionError
from ..model.time import TimePoint
from .functions import FunctionRegistry
from .sqlast import (
    Between,
    Binary,
    CaseWhen,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    SqlExpr,
    SubquerySource,
    TableRef,
    Unary,
)
from .table import Column, Table

__all__ = ["QueryResult", "SelectExecutor", "RowEnv"]


@dataclass
class QueryResult:
    """Columns and rows returned by a SELECT."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> List[Any]:
        index = [c.lower() for c in self.columns].index(name.lower())
        return [row[index] for row in self.rows]


class RowEnv:
    """One joined row: a value slot per binding (table alias)."""

    __slots__ = ("slots",)

    def __init__(self, slots: Dict[str, Tuple[Dict[str, int], Tuple[Any, ...]]]):
        self.slots = slots

    def extended(self, binding: str, colmap: Dict[str, int], row: Tuple) -> "RowEnv":
        slots = dict(self.slots)
        slots[binding] = (colmap, row)
        return RowEnv(slots)

    def lookup(self, name: str, qualifier: Optional[str]) -> Any:
        lowered = name.lower()
        if qualifier is not None:
            key = qualifier.lower()
            for binding, (colmap, row) in self.slots.items():
                if binding.lower() == key:
                    if lowered not in colmap:
                        raise SqlExecutionError(
                            f"binding {qualifier} has no column {name!r}"
                        )
                    return row[colmap[lowered]]
            raise SqlExecutionError(f"unknown table alias {qualifier!r}")
        hits = [
            (colmap, row)
            for colmap, row in self.slots.values()
            if lowered in colmap
        ]
        if not hits:
            raise SqlExecutionError(f"unknown column {name!r}")
        if len(hits) > 1:
            raise SqlExecutionError(f"ambiguous column {name!r}")
        colmap, row = hits[0]
        return row[colmap[lowered]]


@dataclass
class _Source:
    """A materialized FROM item."""

    binding: str
    colmap: Dict[str, int]
    columns: List[str]
    rows: List[Tuple[Any, ...]]


class SelectExecutor:
    """Executes one SELECT against a table provider.

    ``resolve_table(name) -> Table`` materializes tables and views;
    ``functions`` provides scalar/aggregate/tabular implementations.
    """

    def __init__(
        self,
        resolve_table: Callable[[str], Table],
        functions: FunctionRegistry,
    ):
        self.resolve_table = resolve_table
        self.functions = functions

    # -- public ----------------------------------------------------------
    def execute(self, select: Select) -> QueryResult:
        sources = [self._materialize(s) for s in select.sources]
        inner_joins = [j for j in select.joins if j.kind == "INNER"]
        left_joins = [j for j in select.joins if j.kind == "LEFT"]
        inner_sources = [self._materialize(j.source) for j in inner_joins]
        conjuncts: List[SqlExpr] = []
        for join in inner_joins:
            conjuncts.extend(_conjuncts(join.condition))
        if not left_joins:
            # WHERE can be fused into the join only when no null
            # extension will happen afterwards
            conjuncts.extend(_conjuncts(select.where))
        envs = self._join_all(sources + inner_sources, conjuncts)
        envs = [env for env, _pending in envs]
        all_sources = sources + inner_sources
        for join in left_joins:
            source = self._materialize(join.source)
            envs = self._left_join(envs, source, join.condition)
            all_sources.append(source)
        if left_joins and select.where is not None:
            envs = [env for env in envs if self._truthy(select.where, env)]
        if select.group_by or self._has_aggregate(select):
            return self._grouped(select, envs, all_sources)
        return self._plain(select, envs, all_sources)

    def _left_join(
        self, envs: List[RowEnv], source: _Source, condition: SqlExpr
    ) -> List[RowEnv]:
        """Extend each env with matching rows, or a NULL row if none match."""
        null_row = tuple([None] * len(source.columns))
        # try a hash index on equi conjuncts of the ON condition
        on_conjuncts = _conjuncts(condition)
        keys = []

        def determined(expr: SqlExpr) -> bool:
            deps = _bindings_of(expr)
            return source.binding.lower() not in deps

        for conjunct in on_conjuncts:
            if not (isinstance(conjunct, Binary) and conjunct.op == "="):
                continue
            for bound_side, new_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if (
                    isinstance(new_side, ColumnRef)
                    and (new_side.qualifier or "").lower() == source.binding.lower()
                    and new_side.name.lower() in source.colmap
                    and determined(bound_side)
                ):
                    keys.append((bound_side, new_side))
                    break
        index: Optional[Dict[Tuple, List[Tuple]]] = None
        if keys:
            positions = [source.colmap[ref.name.lower()] for _e, ref in keys]
            index = {}
            for row in source.rows:
                index.setdefault(tuple(row[p] for p in positions), []).append(row)
        out: List[RowEnv] = []
        for env in envs:
            if index is not None:
                key = tuple(self._eval(expr, env) for expr, _ref in keys)
                candidates = index.get(key, ())
            else:
                candidates = source.rows
            matched = False
            for row in candidates:
                extended = env.extended(source.binding, source.colmap, row)
                if self._eval(condition, extended) is True:
                    out.append(extended)
                    matched = True
            if not matched:
                out.append(env.extended(source.binding, source.colmap, null_row))
        return out

    def _has_aggregate(self, select: Select) -> bool:
        """Whether the projection or HAVING uses an aggregate function."""
        candidates: List[SqlExpr] = [item.expr for item in select.items]
        if select.having is not None:
            candidates.append(select.having)
        return any(self._contains_aggregate(e) for e in candidates)

    def _contains_aggregate(self, expr: SqlExpr) -> bool:
        if isinstance(expr, FuncCall):
            if self.functions.is_aggregate(expr.name):
                return True
            return any(self._contains_aggregate(a) for a in expr.args)
        if isinstance(expr, Binary):
            return self._contains_aggregate(expr.left) or self._contains_aggregate(
                expr.right
            )
        if isinstance(expr, Unary):
            return self._contains_aggregate(expr.operand)
        if isinstance(expr, IsNull):
            return self._contains_aggregate(expr.operand)
        if isinstance(expr, CaseWhen):
            for condition, result in expr.whens:
                if self._contains_aggregate(condition) or self._contains_aggregate(
                    result
                ):
                    return True
            return expr.otherwise is not None and self._contains_aggregate(
                expr.otherwise
            )
        return False

    # -- FROM ----------------------------------------------------------------
    def _materialize(self, source) -> _Source:
        if isinstance(source, SubquerySource):
            result = self.execute(source.select)
            colmap = {c.lower(): i for i, c in enumerate(result.columns)}
            return _Source(source.alias, colmap, list(result.columns), result.rows)
        if isinstance(source, TableRef):
            table = self.resolve_table(source.name)
            colmap = {c.name.lower(): i for i, c in enumerate(table.columns)}
            return _Source(source.binding, colmap, table.column_names, table.rows)
        tabular = self.functions.tabular(source.name)
        args = []
        for arg in source.args:
            if isinstance(arg, Literal):
                args.append(arg.value)
            else:
                args.append(self.resolve_table(arg))
        result = tabular.impl(*args)
        if not isinstance(result, Table):
            raise SqlExecutionError(
                f"tabular function {source.name} returned {type(result).__name__}"
            )
        colmap = {c.name.lower(): i for i, c in enumerate(result.columns)}
        return _Source(source.binding, colmap, result.column_names, result.rows)

    # -- joining ----------------------------------------------------------------
    def _join_all(
        self, sources: List[_Source], conjuncts: List[SqlExpr]
    ) -> List[Tuple[RowEnv, None]]:
        """Left-deep hash join over all sources; residual conjuncts are
        applied as soon as every binding they mention is available."""
        pending = list(conjuncts)
        if not sources:
            raise SqlExecutionError("SELECT needs at least one FROM source")
        first = sources[0]
        bound = {first.binding.lower()}
        envs = [
            RowEnv({first.binding: (first.colmap, row)}) for row in first.rows
        ]
        envs = self._apply_ready(envs, pending, bound)
        for source in sources[1:]:
            envs = self._hash_join(envs, source, pending, bound)
            bound.add(source.binding.lower())
            envs = self._apply_ready(envs, pending, bound)
        # conditions with unqualified columns (or odd qualifiers) are
        # applied once every source is joined
        for condition in pending:
            envs = [env for env in envs if self._truthy(condition, env)]
        return [(env, None) for env in envs]

    def _apply_ready(
        self, envs: List[RowEnv], pending: List[SqlExpr], bound: set
    ) -> List[RowEnv]:
        ready = [c for c in pending if _bindings_of(c) <= bound]
        for c in ready:
            pending.remove(c)
        for condition in ready:
            envs = [env for env in envs if self._truthy(condition, env)]
        return envs

    def _hash_join(
        self,
        envs: List[RowEnv],
        source: _Source,
        pending: List[SqlExpr],
        bound: set,
    ) -> List[RowEnv]:
        new_binding = source.binding.lower()
        keys: List[Tuple[SqlExpr, ColumnRef]] = []
        used: List[SqlExpr] = []
        for condition in pending:
            pair = _equi_pair(condition, bound, new_binding, source)
            if pair is not None:
                keys.append(pair)
                used.append(condition)
        for condition in used:
            pending.remove(condition)
        if not keys:
            # cartesian extension; residual conditions filter later
            return [
                env.extended(source.binding, source.colmap, row)
                for env in envs
                for row in source.rows
            ]
        index: Dict[Tuple, List[Tuple]] = {}
        new_side_positions = [
            source.colmap[ref.name.lower()] for _bound_expr, ref in keys
        ]
        for row in source.rows:
            index.setdefault(
                tuple(row[p] for p in new_side_positions), []
            ).append(row)
        out: List[RowEnv] = []
        for env in envs:
            key = tuple(self._eval(expr, env) for expr, _ref in keys)
            for row in index.get(key, ()):
                out.append(env.extended(source.binding, source.colmap, row))
        return out

    # -- projection ----------------------------------------------------------
    def _expand_items(
        self, select: Select, sources: List[_Source]
    ) -> List[SelectItem]:
        if select.items:
            return list(select.items)
        items = []
        for source in sources:
            for column in source.columns:
                items.append(SelectItem(ColumnRef(column, source.binding), column))
        return items

    def _plain(
        self, select: Select, envs: List[RowEnv], sources: List[_Source]
    ) -> QueryResult:
        items = self._expand_items(select, sources)
        columns = [_item_name(item, i) for i, item in enumerate(items)]
        rows = [
            tuple(self._eval(item.expr, env) for item in items) for env in envs
        ]
        keyed = list(zip(rows, envs))
        return self._finalize(select, columns, keyed, items)

    def _grouped(
        self, select: Select, envs: List[RowEnv], sources: List[_Source]
    ) -> QueryResult:
        items = self._expand_items(select, sources)
        columns = [_item_name(item, i) for i, item in enumerate(items)]
        groups: Dict[Tuple, List[RowEnv]] = {}
        if select.group_by:
            for env in envs:
                key = tuple(self._eval(e, env) for e in select.group_by)
                groups.setdefault(key, []).append(env)
        else:
            if envs:
                groups[()] = envs
            else:
                groups[()] = []  # global aggregate over empty input
        keyed = []
        for _key, group in groups.items():
            if select.having is not None and not self._truthy_agg(
                select.having, group
            ):
                continue
            row = tuple(self._eval_agg(item.expr, group) for item in items)
            representative = group[0] if group else RowEnv({})
            keyed.append((row, representative))
        return self._finalize(select, columns, keyed, items)

    def _finalize(
        self,
        select: Select,
        columns: List[str],
        keyed: List[Tuple[Tuple, RowEnv]],
        items: List[SelectItem],
    ) -> QueryResult:
        if select.order_by:
            alias_index = {
                (item.alias or "").lower(): i
                for i, item in enumerate(items)
                if item.alias
            }
            for i, item in enumerate(items):
                if isinstance(item.expr, ColumnRef):
                    alias_index.setdefault(item.expr.name.lower(), i)

            def sort_value(order: OrderItem, row: Tuple, env: RowEnv):
                if (
                    isinstance(order.expr, ColumnRef)
                    and order.expr.qualifier is None
                    and order.expr.name.lower() in alias_index
                ):
                    return row[alias_index[order.expr.name.lower()]]
                return self._eval(order.expr, env)

            for order in reversed(select.order_by):
                keyed.sort(
                    key=lambda pair, o=order: _sort_key(sort_value(o, *pair)),
                    reverse=order.descending,
                )
        rows = [row for row, _env in keyed]
        if select.distinct:
            seen = set()
            unique = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        if select.limit is not None:
            rows = rows[: select.limit]
        return QueryResult(columns, rows)

    # -- expression evaluation ---------------------------------------------------
    def _eval(self, expr: SqlExpr, env: RowEnv) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            return env.lookup(expr.name, expr.qualifier)
        if isinstance(expr, Unary):
            value = self._eval(expr.operand, env)
            if expr.op == "-":
                return None if value is None else -value
            if expr.op == "NOT":
                return None if value is None else not value
            raise SqlExecutionError(f"unknown unary operator {expr.op}")
        if isinstance(expr, Binary):
            return self._binary(expr, lambda e: self._eval(e, env))
        if isinstance(expr, IsNull):
            value = self._eval(expr.operand, env)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, InList):
            value = self._eval(expr.operand, env)
            if value is None:
                return None
            members = [self._eval(item, env) for item in expr.items]
            found = value in [m for m in members if m is not None]
            if not found and any(m is None for m in members):
                return None  # SQL: unknown when NULL might match
            return (not found) if expr.negated else found
        if isinstance(expr, Between):
            value = self._eval(expr.operand, env)
            low = self._eval(expr.low, env)
            high = self._eval(expr.high, env)
            if value is None or low is None or high is None:
                return None
            inside = low <= value <= high
            return (not inside) if expr.negated else inside
        if isinstance(expr, CaseWhen):
            for condition, result in expr.whens:
                if self._eval(condition, env) is True:
                    return self._eval(result, env)
            if expr.otherwise is not None:
                return self._eval(expr.otherwise, env)
            return None
        if isinstance(expr, FuncCall):
            if self.functions.is_aggregate(expr.name):
                raise SqlExecutionError(
                    f"aggregate {expr.name} used outside GROUP BY context"
                )
            impl = self.functions.scalar(expr.name)
            return impl(*(self._eval(a, env) for a in expr.args))
        raise SqlExecutionError(f"cannot evaluate {type(expr).__name__}")

    def _eval_agg(self, expr: SqlExpr, group: List[RowEnv]) -> Any:
        """Evaluate in aggregate context: aggregates consume the group."""
        if isinstance(expr, FuncCall) and self.functions.is_aggregate(expr.name):
            impl = self.functions.aggregate(expr.name)
            if expr.star:
                return impl([1] * len(group))
            if len(expr.args) != 1:
                raise SqlExecutionError(
                    f"aggregate {expr.name} takes one argument"
                )
            return impl([self._eval(expr.args[0], env) for env in group])
        if isinstance(expr, Binary):
            return self._binary(expr, lambda e: self._eval_agg(e, group))
        if isinstance(expr, Unary):
            value = self._eval_agg(expr.operand, group)
            if expr.op == "-":
                return None if value is None else -value
            return None if value is None else not value
        if isinstance(expr, FuncCall):
            impl = self.functions.scalar(expr.name)
            return impl(*(self._eval_agg(a, group) for a in expr.args))
        if isinstance(expr, (Literal,)):
            return expr.value
        if not group:
            raise SqlExecutionError(
                "non-aggregate expression over an empty group"
            )
        return self._eval(expr, group[0])

    def _truthy(self, expr: SqlExpr, env: RowEnv) -> bool:
        return self._eval(expr, env) is True

    def _truthy_agg(self, expr: SqlExpr, group: List[RowEnv]) -> bool:
        return self._eval_agg(expr, group) is True

    def _binary(self, expr: Binary, ev: Callable[[SqlExpr], Any]) -> Any:
        op = expr.op
        if op == "AND":
            left = ev(expr.left)
            if left is False:
                return False
            right = ev(expr.right)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = ev(expr.left)
            if left is True:
                return True
            right = ev(expr.right)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = ev(expr.left)
        right = ev(expr.right)
        if left is None or right is None:
            return None
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        return _arith(op, left, right)


def _arith(op: str, left: Any, right: Any) -> Any:
    if isinstance(left, TimePoint) or isinstance(right, TimePoint):
        return _time_arith(op, left, right)
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise SqlExecutionError("division by zero")
            return left / right
        if op == "%":
            return left % right
    except TypeError as exc:
        raise SqlExecutionError(f"bad operands for {op}: {left!r}, {right!r}") from exc
    raise SqlExecutionError(f"unknown operator {op}")


def _time_arith(op: str, left: Any, right: Any) -> Any:
    if isinstance(left, TimePoint) and isinstance(right, (int, float)):
        if op == "+":
            return left.shift(int(right))
        if op == "-":
            return left.shift(-int(right))
    if isinstance(left, TimePoint) and isinstance(right, TimePoint) and op == "-":
        return left - right
    raise SqlExecutionError(f"unsupported TIME arithmetic: {left!r} {op} {right!r}")


def _compare(op: str, left: Any, right: Any) -> bool:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    except TypeError as exc:
        raise SqlExecutionError(
            f"cannot compare {left!r} and {right!r}"
        ) from exc


def _sort_key(value: Any):
    if value is None:
        return (0, 0)
    if isinstance(value, TimePoint):
        return (1, value.ordinal)
    if isinstance(value, str):
        return (2, value)
    return (1, value)


def _conjuncts(expr: Optional[SqlExpr]) -> List[SqlExpr]:
    if expr is None:
        return []
    if isinstance(expr, Binary) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _bindings_of(expr: SqlExpr) -> set:
    """Lowercased table bindings referenced by an expression.

    An unqualified column is treated as referencing no specific
    binding, so conditions with unqualified columns are applied only
    after all sources are joined (conservative but correct).
    """
    out: set = set()
    unqualified = [False]

    def walk(node: SqlExpr):
        if isinstance(node, ColumnRef):
            if node.qualifier is None:
                unqualified[0] = True
            else:
                out.add(node.qualifier.lower())
        elif isinstance(node, Binary):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Unary):
            walk(node.operand)
        elif isinstance(node, IsNull):
            walk(node.operand)
        elif isinstance(node, FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, CaseWhen):
            for condition, result in node.whens:
                walk(condition)
                walk(result)
            if node.otherwise is not None:
                walk(node.otherwise)

    walk(expr)
    if unqualified[0]:
        out.add("*unqualified*")  # never a real binding -> applied last
    return out


def _equi_pair(
    condition: SqlExpr, bound: set, new_binding: str, source: _Source
) -> Optional[Tuple[SqlExpr, ColumnRef]]:
    """If ``condition`` is ``boundexpr = new.col`` (either side), return
    ``(bound-side expression, new-side column ref)`` for hash joining."""
    if not (isinstance(condition, Binary) and condition.op == "="):
        return None
    for bound_side, new_side in (
        (condition.left, condition.right),
        (condition.right, condition.left),
    ):
        if not isinstance(new_side, ColumnRef):
            continue
        qualifier = (new_side.qualifier or "").lower()
        if qualifier != new_binding:
            continue
        if new_side.name.lower() not in source.colmap:
            continue
        deps = _bindings_of(bound_side)
        if deps and deps <= bound:
            return (bound_side, new_side)
    return None


def _item_name(item: SelectItem, position: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ColumnRef):
        return item.expr.name
    return f"col{position + 1}"
