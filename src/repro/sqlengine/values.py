"""SQL value model and column types.

The engine supports four column types.  ``TIME`` stores
:class:`~repro.model.time.TimePoint` values natively — the statistical
add-on role that commercial systems fill with DATE columns plus
calendar functions — so generated SQL can shift and convert time
dimensions without lossy encoding.  ``NULL`` is represented by Python
``None`` with SQL three-valued comparison semantics.
"""

from __future__ import annotations

import enum
from typing import Any

from ..errors import SqlExecutionError
from ..model.time import TimePoint

__all__ = ["SqlType", "check_type", "sql_repr"]


class SqlType(enum.Enum):
    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    TIME = "TIME"

    @classmethod
    def parse(cls, name: str) -> "SqlType":
        try:
            return cls[name.upper()]
        except KeyError:
            raise SqlExecutionError(f"unknown column type {name!r}") from None


def check_type(sql_type: SqlType, value: Any, context: str = "") -> Any:
    """Validate (and mildly coerce) a value against a column type.

    INTEGER accepts whole floats; REAL accepts ints.  ``None`` (NULL)
    is always accepted.
    """
    if value is None:
        return None
    where = f" in {context}" if context else ""
    if sql_type is SqlType.INTEGER:
        if isinstance(value, bool):
            raise SqlExecutionError(f"boolean is not INTEGER{where}")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value == int(value):
            return int(value)
        raise SqlExecutionError(f"{value!r} is not INTEGER{where}")
    if sql_type is SqlType.REAL:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SqlExecutionError(f"{value!r} is not REAL{where}")
        return float(value)
    if sql_type is SqlType.TEXT:
        if not isinstance(value, str):
            raise SqlExecutionError(f"{value!r} is not TEXT{where}")
        return value
    if sql_type is SqlType.TIME:
        if not isinstance(value, TimePoint):
            raise SqlExecutionError(f"{value!r} is not TIME{where}")
        return value
    raise SqlExecutionError(f"unhandled type {sql_type}")


def sql_repr(value: Any) -> str:
    """Render a value as an SQL literal (for generated scripts)."""
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, TimePoint):
        return f"TIME '{value}'"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)
