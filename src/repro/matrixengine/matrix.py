"""A numpy-backed matrix engine — the Matlab substitute of Section 5.2.

Matlab scripts in the paper treat cubes as matrices with *positional*
columns (``tmp[ ; 3] .* tmp[ ; 4]``).  :class:`Matrix` reproduces that
model: a 2-D object array addressed by 1-based column positions, with
``join`` (composition on key columns), element-wise arithmetic between
column vectors, and horizontal composition.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import MatrixError

__all__ = ["Matrix"]


class Matrix:
    """A 2-D value matrix with 1-based positional column access."""

    def __init__(self, data: Sequence[Sequence[Any]]):
        rows = [tuple(row) for row in data]
        if not rows:
            # Matrix([]) and from_rows() of an exhausted iterator agree
            # on the 0×0 matrix
            self._array = np.empty((0, 0), dtype=object)
            return
        width = len(rows[0])
        if any(len(r) != width for r in rows):
            raise MatrixError("ragged rows in matrix literal")
        self._array = np.empty((len(rows), width), dtype=object)
        for i, row in enumerate(rows):
            for j, value in enumerate(row):
                self._array[i, j] = value

    @classmethod
    def _wrap(cls, array: np.ndarray) -> "Matrix":
        out = cls.__new__(cls)
        out._array = array
        return out

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[Any]]) -> "Matrix":
        return cls(list(rows))

    # -- shape -------------------------------------------------------------
    @property
    def nrow(self) -> int:
        return self._array.shape[0]

    @property
    def ncol(self) -> int:
        return self._array.shape[1]

    def rows(self) -> List[Tuple[Any, ...]]:
        return [tuple(row) for row in self._array]

    # -- column access (1-based, like Matlab) ------------------------------------
    def col(self, position: int) -> np.ndarray:
        self._check_col(position)
        return self._array[:, position - 1]

    def _check_col(self, position: int) -> None:
        if not 1 <= position <= self.ncol:
            raise MatrixError(
                f"column {position} out of range 1..{self.ncol}"
            )

    def with_column(self, position: int, values: Sequence[Any]) -> "Matrix":
        """A new matrix with column ``position`` set (appending if it is
        ``ncol + 1`` — the Matlab ``tmp[;5] = …`` idiom)."""
        values = np.asarray(list(values), dtype=object)
        if len(values) != self.nrow:
            raise MatrixError("column length does not match row count")
        if position == self.ncol + 1:
            return Matrix._wrap(np.column_stack([self._array, values]))
        self._check_col(position)
        array = self._array.copy()
        array[:, position - 1] = values
        return Matrix._wrap(array)

    def select(self, positions: Sequence[int]) -> "Matrix":
        """Horizontal composition ``[m[;1] m[;2] m[;5]]``."""
        for p in positions:
            self._check_col(p)
        return Matrix._wrap(self._array[:, [p - 1 for p in positions]].copy())

    # -- element-wise arithmetic (Matlab's .* ./ .+ .-) -----------------------------
    def elementwise(
        self, op: str, left_col: int, right_col: int
    ) -> np.ndarray:
        left = self.col(left_col).astype(float)
        right = self.col(right_col).astype(float)
        return _apply_elementwise(op, left, right)

    # -- join (the Matlab join(A, keys, B, keys) of the paper) ----------------------
    def join(
        self,
        other: "Matrix",
        self_keys: Sequence[int],
        other_keys: Sequence[int],
    ) -> "Matrix":
        """Inner join; output columns are all of self followed by the
        non-key columns of other, preserving self's order."""
        if len(self_keys) != len(other_keys):
            raise MatrixError("join key lists differ in length")
        index: Dict[Tuple, List[int]] = {}
        for j in range(other.nrow):
            key = tuple(other._array[j, k - 1] for k in other_keys)
            index.setdefault(key, []).append(j)
        other_extra = [c for c in range(1, other.ncol + 1) if c not in other_keys]
        rows = []
        for i in range(self.nrow):
            key = tuple(self._array[i, k - 1] for k in self_keys)
            for j in index.get(key, ()):
                rows.append(
                    tuple(self._array[i])
                    + tuple(other._array[j, c - 1] for c in other_extra)
                )
        if not rows:
            return Matrix._wrap(
                np.empty((0, self.ncol + len(other_extra)), dtype=object)
            )
        return Matrix.from_rows(rows)

    # -- grouping and whole-matrix transforms -----------------------------------------
    def group_aggregate(
        self,
        key_cols: Sequence[int],
        value_col: int,
        func: Callable[[List[float]], float],
        key_funcs: Dict[int, Callable[[Any], Any]] = None,
    ) -> "Matrix":
        key_funcs = key_funcs or {}
        groups: Dict[Tuple, List[float]] = {}
        for i in range(self.nrow):
            key = tuple(
                key_funcs.get(k, _identity)(self._array[i, k - 1])
                for k in key_cols
            )
            groups.setdefault(key, []).append(float(self._array[i, value_col - 1]))
        rows = [key + (func(bag),) for key, bag in groups.items()]
        if not rows:
            return Matrix._wrap(np.empty((0, len(key_cols) + 1), dtype=object))
        return Matrix.from_rows(rows)

    def sort_by(self, key_cols: Sequence[int]) -> "Matrix":
        def keyfn(row):
            return tuple(_sortable(row[k - 1]) for k in key_cols)

        return Matrix.from_rows(sorted(self.rows(), key=keyfn)) if self.nrow else self

    def equals(self, other: "Matrix") -> bool:
        if self.nrow != other.nrow or self.ncol != other.ncol:
            return False
        mine = sorted(self.rows(), key=lambda r: tuple(_sortable(v) for v in r))
        theirs = sorted(other.rows(), key=lambda r: tuple(_sortable(v) for v in r))
        return mine == theirs

    def __repr__(self) -> str:
        return f"Matrix({self.nrow}x{self.ncol})"


def _apply_elementwise(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if np.any(right == 0):
            raise MatrixError("element-wise division by zero")
        return left / right
    if op == "^":
        return left**right
    raise MatrixError(f"unknown element-wise operator {op!r}")


def _identity(value: Any) -> Any:
    return value


def _sortable(value: Any):
    from ..model.time import TimePoint

    if isinstance(value, TimePoint):
        return (1, value.freq.value, value.ordinal)
    if isinstance(value, str):
        return (2, value)
    return (1, "", float(value))
