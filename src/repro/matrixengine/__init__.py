"""The matrix engine backing the Matlab translation target."""

from .matrix import Matrix

__all__ = ["Matrix"]
