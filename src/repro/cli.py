"""Command-line interface: ``python -m repro <command> project.json``.

A *project file* (JSON) declares the elementary cubes, points at the
EXL program and the input CSVs, and optionally pins cubes to targets:

.. code-block:: json

    {
      "elementary": [
        {"name": "PDR",
         "dimensions": [["d", "time:D"], ["r", "string"]],
         "measure": "p",
         "csv": "pdr.csv"}
      ],
      "program": "program.exl",
      "preferred_targets": {"GDPT": "r"},
      "outputs": ["PCHNG"]
    }

Commands:

* ``show``    — print the generated schema mapping (tgds + egds);
* ``compile`` — print the generated script for one target system;
* ``explain`` — print the determination plan (subgraphs and targets);
* ``run``     — execute the program, writing derived cubes as CSVs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from .backends import all_backends
from .engine import EXLEngine
from .errors import ReproError
from .exl import Program
from .mappings import generate_mapping, simplify_mapping
from .model import Cube, CubeSchema, Dimension, Schema
from .model.io import parse_dimtype, read_cube_csv, write_cube_csv
from .obs import MetricsRegistry, Tracer

__all__ = ["main", "load_project"]


class Project:
    """A parsed project file plus its base directory."""

    def __init__(self, spec: Dict[str, Any], base_dir: Path):
        self.base_dir = base_dir
        self.schemas: List[CubeSchema] = []
        self.csv_paths: Dict[str, Optional[Path]] = {}
        for entry in spec.get("elementary", []):
            dimensions = [
                Dimension(name, parse_dimtype(type_spec))
                for name, type_spec in entry["dimensions"]
            ]
            schema = CubeSchema(
                entry["name"], dimensions, entry.get("measure", "value")
            )
            self.schemas.append(schema)
            csv_name = entry.get("csv")
            self.csv_paths[schema.name] = (
                (base_dir / csv_name) if csv_name else None
            )
        program_spec = spec.get("program")
        if program_spec is None:
            raise ReproError("project file needs a 'program' entry")
        program_path = base_dir / program_spec
        if program_path.exists():
            self.program_source = program_path.read_text()
        else:
            # allow inline programs: "program": "C := A * 2"
            self.program_source = program_spec
        self.preferred_targets: Dict[str, str] = dict(
            spec.get("preferred_targets", {})
        )
        self.outputs: Optional[List[str]] = spec.get("outputs")

    @property
    def schema(self) -> Schema:
        return Schema(self.schemas, "project")

    def load_data(self) -> Dict[str, Cube]:
        data = {}
        for schema in self.schemas:
            path = self.csv_paths[schema.name]
            if path is None:
                continue
            data[schema.name] = read_cube_csv(schema, path)
        return data


def load_project(path: str) -> Project:
    """Parse a project file."""
    project_path = Path(path)
    spec = json.loads(project_path.read_text())
    return Project(spec, project_path.parent)


def _mapping_for(project: Project, simplify: bool):
    program = Program.compile(project.program_source, project.schema)
    mapping = generate_mapping(program)
    if simplify:
        mapping = simplify_mapping(mapping)
    return mapping


def cmd_show(args) -> int:
    project = load_project(args.project)
    mapping = _mapping_for(project, args.simplify)
    print(mapping.describe())
    return 0


def cmd_compile(args) -> int:
    project = load_project(args.project)
    mapping = _mapping_for(project, args.simplify)
    backends = all_backends()
    if args.target not in backends:
        print(f"unknown target {args.target!r}; known: {sorted(backends)}", file=sys.stderr)
        return 2
    print(backends[args.target].script(mapping))
    return 0


def _build_engine(
    project: Project,
    parallel: bool = False,
    jobs: int = 4,
    chase_cache: bool = True,
    vectorize: bool = True,
    tracer=None,
    metrics=None,
) -> EXLEngine:
    engine = EXLEngine(
        parallel=parallel,
        jobs=jobs,
        chase_cache=chase_cache,
        vectorize=vectorize,
        tracer=tracer,
        metrics=metrics,
    )
    for schema in project.schemas:
        engine.declare_elementary(schema)
    engine.add_program(project.program_source, project.preferred_targets)
    for cube in project.load_data().values():
        engine.load(cube)
    return engine


def cmd_explain(args) -> int:
    project = load_project(args.project)
    engine = _build_engine(project)
    changed = [n for n, p in project.csv_paths.items() if p is not None]
    print("determination plan (subgraph -> target):")
    for subgraph in engine.plan(changed or None):
        print(f"  [{subgraph.target}] {', '.join(subgraph.cubes)}")
    return 0


def cmd_run(args) -> int:
    project = load_project(args.project)
    tracer = Tracer() if args.trace else None
    metrics = MetricsRegistry() if (args.trace or args.metrics) else None
    engine = _build_engine(
        project,
        parallel=args.parallel,
        jobs=args.jobs,
        chase_cache=not args.no_chase_cache,
        vectorize=not args.no_vectorize,
        tracer=tracer,
        metrics=metrics,
    )
    try:
        record = engine.run()
    finally:
        # the trace is most valuable when the run failed mid-chase
        if tracer is not None:
            tracer.write_chrome_trace(args.trace)
            print(f"wrote trace {args.trace} ({len(tracer.spans)} spans)",
                  file=sys.stderr)
    print(record.summary())
    if tracer is not None:
        print("\ntrace summary:")
        print(tracer.summary())
    if args.metrics:
        print("\nmetrics:")
        print(engine.metrics.render())
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    names = project.outputs or list(record.affected)
    for name in names:
        cube = engine.data(name)
        destination = out_dir / f"{name}.csv"
        write_cube_csv(cube, destination)
        print(f"wrote {destination} ({len(cube)} tuples)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EXLEngine reproduction: compile and run EXL statistical programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="print the generated schema mapping")
    show.add_argument("project")
    show.add_argument("--simplify", action="store_true", help="compose complex tgds")
    show.set_defaults(func=cmd_show)

    compile_cmd = sub.add_parser("compile", help="print a target-system script")
    compile_cmd.add_argument("project")
    compile_cmd.add_argument(
        "--target", default="sql", help="sql | r | matlab | etl | chase"
    )
    compile_cmd.add_argument("--simplify", action="store_true")
    compile_cmd.set_defaults(func=cmd_compile)

    explain = sub.add_parser("explain", help="print the determination plan")
    explain.add_argument("project")
    explain.set_defaults(func=cmd_explain)

    run = sub.add_parser("run", help="execute the program and export CSVs")
    run.add_argument("project")
    run.add_argument("--out", default="out", help="output directory for CSVs")
    run.add_argument(
        "--parallel",
        action="store_true",
        help="execute independent strata/subgraphs concurrently "
        "(solution-equivalent to the sequential stratified chase)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=4,
        metavar="N",
        help="worker threads for parallel waves (default: 4)",
    )
    run.add_argument(
        "--no-chase-cache",
        action="store_true",
        help="disable the cube-level chase materialization cache",
    )
    run.add_argument(
        "--no-vectorize",
        action="store_true",
        help="disable the columnar chase kernels and run the "
        "tuple-at-a-time chase (bit-exact ablation baseline)",
    )
    run.add_argument(
        "--trace",
        metavar="FILE",
        help="record a hierarchical trace of the run (run -> wave -> "
        "tgd -> kernel phase) as Chrome trace-event JSON, loadable in "
        "chrome://tracing or Perfetto",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry (counters and histograms: "
        "tuples, cache hits, kernel fallbacks with reasons, wave "
        "widths/durations) after the run",
    )
    run.set_defaults(func=cmd_run)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
