"""Command-line interface: ``python -m repro <command> project.json``.

A *project file* (JSON) declares the elementary cubes, points at the
EXL program and the input CSVs, and optionally pins cubes to targets:

.. code-block:: json

    {
      "elementary": [
        {"name": "PDR",
         "dimensions": [["d", "time:D"], ["r", "string"]],
         "measure": "p",
         "csv": "pdr.csv"}
      ],
      "program": "program.exl",
      "preferred_targets": {"GDPT": "r"},
      "outputs": ["PCHNG"]
    }

Commands:

* ``show``    — print the generated schema mapping (tgds + egds);
* ``compile`` — print the generated script for one target system;
* ``explain`` — print the determination plan (subgraphs and targets);
* ``run``     — execute the program, writing derived cubes as CSVs;
* ``resume``  — finish a partially-failed ``run`` from its state file;
* ``update``  — incremental run: diff the input CSVs against the last
  run's persisted baseline (``<out>/baseline/``) and recompute only
  the affected subgraphs, skipping clean ones;
* ``recover`` — replay the write-ahead journal after a hard crash
  (SIGKILL, OOM, power loss), roll back torn writes, and synthesize a
  resumable state file from the checksummed committed subgraphs.

Fault tolerance: ``run`` accepts ``--retries`` / ``--deadline`` /
``--on-error fail|continue|degrade`` and a deterministic fault-injection
spec (``--inject-faults``, see :mod:`repro.engine.faults`).  When a run
ends with failed or skipped subgraphs, the per-subgraph outcomes and
the committed cubes are persisted next to the outputs
(``<out>/run-state.json`` + ``<out>/.committed/``); ``resume`` reloads
them and re-dispatches only the unfinished subgraphs.

Durability: every durable artifact (run state, outputs, baseline CSVs
and JSON, sidecars, committed snapshots) is written atomically
(tmp-file + rename, :mod:`repro.chase.atomic`), and — unless
``--no-journal`` — every ``run``/``update``/``resume`` keeps a fsynced
write-ahead journal (``<out>/journal/*.wal``) of its plan and commits,
so ``exl recover`` + ``exl resume`` reproduce an uninterrupted run
after a kill at any byte offset.

Exit codes: 0 success, 1 error, 2 usage/nothing-to-do, 3 partial
failure (state file written), 4 corrupt or truncated state/baseline
file (quarantine or ``exl recover`` advised).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import shutil
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from .backends import all_backends
from .chase.atomic import atomic_write
from .chase.persist import (
    attach_lattice_sidecar,
    attach_store_sidecar,
    olap_sidecar_path_for,
    sidecar_path_for,
    write_lattice_sidecar,
    write_store_sidecar,
)
from .engine import EXLEngine, RunJournal
from .engine import recover as recover_out_dir
from .engine.history import COMMITTED_OUTCOMES
from .errors import ReproError
from .exl import Program
from .mappings import generate_mapping, simplify_mapping
from .model import Cube, CubeSchema, Dimension, Schema
from .model.io import (
    cube_from_csv_text,
    cube_to_csv_text,
    parse_dim_value,
    parse_dimtype,
    read_cube_csv,
)
from .obs import MetricsRegistry, Tracer
from .olap import format_measure

__all__ = ["main", "load_project"]

#: exit code for a corrupt/truncated run-state or baseline JSON file —
#: distinct from 1 (error) and 3 (resumable partial failure) so scripts
#: can route to ``exl recover`` instead of retrying blindly
EXIT_CORRUPT_STATE = 4


class Project:
    """A parsed project file plus its base directory."""

    def __init__(self, spec: Dict[str, Any], base_dir: Path):
        self.base_dir = base_dir
        self.schemas: List[CubeSchema] = []
        self.csv_paths: Dict[str, Optional[Path]] = {}
        for entry in spec.get("elementary", []):
            dimensions = [
                Dimension(name, parse_dimtype(type_spec))
                for name, type_spec in entry["dimensions"]
            ]
            schema = CubeSchema(
                entry["name"], dimensions, entry.get("measure", "value")
            )
            self.schemas.append(schema)
            csv_name = entry.get("csv")
            self.csv_paths[schema.name] = (
                (base_dir / csv_name) if csv_name else None
            )
        program_spec = spec.get("program")
        if program_spec is None:
            raise ReproError("project file needs a 'program' entry")
        program_path = base_dir / program_spec
        if program_path.exists():
            self.program_source = program_path.read_text()
        else:
            # allow inline programs: "program": "C := A * 2"
            self.program_source = program_spec
        self.preferred_targets: Dict[str, str] = dict(
            spec.get("preferred_targets", {})
        )
        self.outputs: Optional[List[str]] = spec.get("outputs")
        # optional attribute groupings for the OLAP layer:
        # {"CUBE": {"dim": {"level": {"base value": "group", ...}}}}
        self.groupings: Dict[str, Any] = dict(spec.get("groupings", {}))

    @property
    def schema(self) -> Schema:
        return Schema(self.schemas, "project")

    def load_data(self) -> Dict[str, Cube]:
        data = {}
        for schema in self.schemas:
            path = self.csv_paths[schema.name]
            if path is None:
                continue
            data[schema.name] = read_cube_csv(schema, path)
        return data


def load_project(path: str) -> Project:
    """Parse a project file."""
    project_path = Path(path)
    spec = json.loads(project_path.read_text())
    return Project(spec, project_path.parent)


def _mapping_for(project: Project, simplify: bool):
    program = Program.compile(project.program_source, project.schema)
    mapping = generate_mapping(program)
    if simplify:
        mapping = simplify_mapping(mapping)
    return mapping


def cmd_show(args) -> int:
    project = load_project(args.project)
    mapping = _mapping_for(project, args.simplify)
    print(mapping.describe())
    return 0


def cmd_compile(args) -> int:
    project = load_project(args.project)
    mapping = _mapping_for(project, args.simplify)
    backends = all_backends()
    if args.target not in backends:
        print(f"unknown target {args.target!r}; known: {sorted(backends)}", file=sys.stderr)
        return 2
    print(backends[args.target].script(mapping))
    return 0


def _build_engine(
    project: Project,
    parallel: bool = False,
    jobs: int = 4,
    shards: int = 1,
    chase_cache: bool = True,
    vectorize: bool = True,
    tracer=None,
    metrics=None,
    backoff_s=None,
    journal=None,
    adaptive: bool = False,
    out_dir: Optional[Path] = None,
) -> EXLEngine:
    # adaptive runs learn across processes: the cost history lives next
    # to the run's other durable state, under <out>/costs/
    cost_model = None
    if adaptive:
        from .engine import CostModel

        cost_model = CostModel(out_dir / "costs" if out_dir else None)
    engine = EXLEngine(
        parallel=parallel,
        jobs=jobs,
        shards=shards,
        chase_cache=chase_cache,
        vectorize=vectorize,
        tracer=tracer,
        metrics=metrics,
        backoff_s=backoff_s,
        journal=journal,
        adaptive=adaptive,
        cost_model=cost_model,
    )
    for schema in project.schemas:
        engine.declare_elementary(schema)
    engine.add_program(project.program_source, project.preferred_targets)
    for cube_name, dims in project.groupings.items():
        for dim_name, levels in dims.items():
            dtype = engine.catalog.schema_of(cube_name).dimension(dim_name).dtype
            for level_name, mapping in levels.items():
                # JSON object keys are strings; parse them back through
                # the dimension type so integer dims group on integers
                engine.catalog.declare_grouping(
                    cube_name,
                    dim_name,
                    level_name,
                    {
                        parse_dim_value(dtype, key): value
                        for key, value in mapping.items()
                    },
                )
    for cube in project.load_data().values():
        engine.load(cube)
    return engine


def cmd_explain(args) -> int:
    project = load_project(args.project)
    engine = _build_engine(project)
    changed = [n for n, p in project.csv_paths.items() if p is not None]
    print("determination plan (subgraph -> target):")
    for subgraph in engine.plan(changed or None):
        print(f"  [{subgraph.target}] {', '.join(subgraph.cubes)}")
    return 0


def _fault_plan_from(args):
    if not getattr(args, "inject_faults", None):
        return None
    from .engine.faults import parse_fault_spec

    return parse_fault_spec(args.inject_faults, seed=args.fault_seed)


def _state_path(args, out_dir: Path) -> Path:
    return Path(args.state) if args.state else out_dir / "run-state.json"


def _journal_for(args, out_dir: Path) -> Optional[RunJournal]:
    """The run's write-ahead journal, unless ``--no-journal``."""
    if getattr(args, "no_journal", False):
        return None
    return RunJournal(out_dir)


def _load_state_json(
    path: Path, kind: str, out_dir: Path
) -> Optional[Dict[str, Any]]:
    """Parse a state/baseline JSON file, or None when it is corrupt.

    Torn, truncated, empty, or unreadable files — the debris a hard
    crash leaves without atomic writes — are reported with the
    offending path and a recovery hint instead of tracebacking; the
    caller exits with :data:`EXIT_CORRUPT_STATE`.
    """
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(
            f"corrupt {kind} at {path}: {exc}",
            file=sys.stderr,
        )
        print(
            f"inspect or delete it, or try: exl recover --out {out_dir}",
            file=sys.stderr,
        )
        return None
    if not isinstance(data, dict) or not isinstance(data.get("record"), dict):
        print(
            f"corrupt {kind} at {path}: not a run-state document",
            file=sys.stderr,
        )
        print(
            f"inspect or delete it, or try: exl recover --out {out_dir}",
            file=sys.stderr,
        )
        return None
    return data


def _merged_state_record(previous: Optional[Dict[str, Any]], record) -> Dict[str, Any]:
    """Fold a (possibly resumed) run into the persisted record.

    Subgraphs re-dispatched by the new run replace their old outcomes;
    everything the earlier run already committed is kept.
    """
    merged = record.to_json()
    if previous is not None:
        by_cubes = {tuple(s["cubes"]): s for s in merged["subgraphs"]}
        folded = []
        for sub in previous["subgraphs"]:
            folded.append(by_cubes.pop(tuple(sub["cubes"]), sub))
        folded.extend(by_cubes.values())
        merged["subgraphs"] = folded
    return merged


def _persist_state(engine, state_record: Dict[str, Any], out_dir: Path,
                   state_path: Path) -> None:
    """Write the resumable state: outcomes + committed cube snapshots.

    Both the snapshots and the state file are written atomically, so a
    crash during persistence can never leave a torn file that a later
    ``resume`` would misread — at worst the state file simply does not
    exist yet and the journal is still authoritative.
    """
    committed_dir = out_dir / ".committed"
    committed: Dict[str, str] = {}
    for sub in state_record["subgraphs"]:
        if sub["outcome"] in COMMITTED_OUTCOMES:
            for name in sub["cubes"]:
                destination = committed_dir / f"{name}.csv"
                atomic_write(destination, cube_to_csv_text(engine.data(name)))
                committed[name] = str(destination.relative_to(out_dir))
    atomic_write(
        state_path,
        json.dumps({"record": state_record, "committed": committed}, indent=2)
        + "\n",
    )


def _write_outputs(engine, project, record, out_dir: Path, journal=None) -> None:
    names = project.outputs or list(
        dict.fromkeys(
            cube for sub in record["subgraphs"] for cube in sub["cubes"]
        )
    )
    for name in names:
        if not engine.catalog.has_data(name):
            print(f"skipped {name}: not computed (see run state)", file=sys.stderr)
            continue
        cube = engine.data(name)
        destination = out_dir / f"{name}.csv"
        text = journal.snapshot_text(name) if journal is not None else None
        if text is None:
            text = cube_to_csv_text(cube)
        atomic_write(destination, text)
        if journal is not None:
            journal.sidecar_write(
                "output", destination,
                hashlib.sha256(text.encode("utf-8")).hexdigest(),
            )
        print(f"wrote {destination} ({len(cube)} tuples)")


def _finish_run(engine, project, record, previous_state, args,
                journal=None) -> int:
    """Shared run/resume epilogue: outputs, state file, exit code.

    Success (0) leaves the state file, committed snapshots, and journal
    in place — :func:`_finalize_success` removes them only after the
    baseline is durably persisted, so a crash anywhere in the epilogue
    stays recoverable.
    """
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    state_record = _merged_state_record(
        previous_state["record"] if previous_state else None, record
    )
    state_path = _state_path(args, out_dir)
    unfinished = [
        s for s in state_record["subgraphs"]
        if s["outcome"] not in COMMITTED_OUTCOMES
    ]
    _write_outputs(engine, project, state_record, out_dir, journal=journal)
    if unfinished:
        _persist_state(engine, state_record, out_dir, state_path)
        if journal is not None:
            # the durably-written state file now supersedes the journal
            journal.discard()
        print(
            f"partial failure: {len(unfinished)} subgraph(s) unfinished; "
            f"state written to {state_path} — finish with: "
            f"exl resume {args.project} --out {out_dir}",
            file=sys.stderr,
        )
        return 3
    return 0


def _finalize_success(out_dir: Path, state_path: Path, journal=None) -> None:
    """Drop crash artifacts once the baseline fully supersedes them.

    ``run-complete`` goes into the journal *first*: if the process dies
    mid-cleanup, ``exl recover`` sees the marker and finishes the
    removal instead of resurrecting a stale state file.
    """
    if journal is not None:
        journal.run_complete()
    if state_path.exists():
        state_path.unlink()
    committed_dir = out_dir / ".committed"
    if committed_dir.is_dir():
        shutil.rmtree(committed_dir)
    if journal is not None:
        journal.discard()


def _baseline_paths(out_dir: Path):
    baseline_dir = out_dir / "baseline"
    return baseline_dir, baseline_dir / "baseline.json"


def _persist_baseline(engine, record, out_dir: Path, journal=None) -> None:
    """Snapshot the finished run for a later ``exl update``.

    Writes every cube with data (elementary and derived) as a CSV under
    ``<out>/baseline/`` plus the run record; ``update`` diffs fresh
    input CSVs against these to decide what is dirty, and re-admits the
    derived ones so unchanged subgraphs keep their results.  Each CSV
    gets a columnar sidecar (``baseline/columnar/<name>.json``) holding
    the cube's dictionaries and key codes, so the next process attaches
    the encoded columns instead of re-encoding unchanged relations.

    All files are written atomically, and ``baseline.json`` is written
    *last* — a crash mid-baseline leaves no ``baseline.json``, which
    ``update`` already treats as "no baseline", never a torn one.
    """
    baseline_dir, baseline_file = _baseline_paths(out_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    cubes: Dict[str, str] = {}
    for name in engine.catalog.store.names():
        if not engine.catalog.has_data(name):
            continue
        destination = baseline_dir / f"{name}.csv"
        text = journal.snapshot_text(name) if journal is not None else None
        if text is None:
            text = cube_to_csv_text(engine.data(name))
        atomic_write(destination, text)
        if journal is not None:
            journal.sidecar_write(
                "baseline", destination,
                hashlib.sha256(text.encode("utf-8")).hexdigest(),
            )
        write_store_sidecar(
            engine.data(name), destination, sidecar_path_for(baseline_dir, name)
        )
        if engine.olap is not None:
            write_lattice_sidecar(
                engine.olap.lattice(name),
                destination,
                olap_sidecar_path_for(baseline_dir, name),
            )
        cubes[name] = destination.name
    atomic_write(
        baseline_file,
        json.dumps({"record": record.to_json(), "cubes": cubes}, indent=2)
        + "\n",
    )
    if journal is not None:
        journal.sidecar_write("baseline-index", baseline_file)


def cmd_update(args) -> int:
    project = load_project(args.project)
    out_dir = Path(args.out)
    baseline_dir, baseline_file = _baseline_paths(out_dir)
    journal = _journal_for(args, out_dir)
    engine = _build_engine(
        project,
        parallel=args.parallel,
        jobs=args.jobs,
        shards=args.shards,
        chase_cache=not args.no_chase_cache,
        vectorize=not args.no_vectorize,
        backoff_s=args.backoff,
        journal=journal,
        adaptive=args.adaptive,
        out_dir=out_dir,
    )
    if not baseline_file.exists():
        print(
            f"no baseline at {baseline_file}: running in full",
            file=sys.stderr,
        )
        record = engine.run(
            retries=args.retries,
            deadline_s=args.deadline,
            on_error=args.on_error,
            fault_plan=_fault_plan_from(args),
        )
        print(record.summary())
        code = _finish_run(engine, project, record, None, args, journal=journal)
        if code == 0:
            _persist_baseline(engine, record, out_dir, journal=journal)
            _finalize_success(out_dir, _state_path(args, out_dir), journal)
        return code
    state = _load_state_json(baseline_file, "baseline", out_dir)
    if state is None:
        return EXIT_CORRUPT_STATE
    baseline_run_id = state["record"].get("run_id")
    if args.against is not None and args.against != baseline_run_id:
        print(
            f"baseline at {baseline_file} is run {baseline_run_id}, "
            f"not {args.against}",
            file=sys.stderr,
        )
        return 2
    # which inputs actually changed: diff the freshly-loaded CSVs
    # against the baseline snapshots (version counters mean nothing
    # across processes, content is the only signal)
    changed: List[str] = []
    for name in engine.catalog.elementary_names:
        if not engine.catalog.has_data(name):
            continue
        rel_path = state.get("cubes", {}).get(name)
        if rel_path is None:
            changed.append(name)
            continue
        previous = read_cube_csv(
            engine.catalog.schema_of(name), baseline_dir / rel_path
        )
        if not previous.delta(engine.data(name)).is_empty:
            changed.append(name)
        else:
            # content-identical to the baseline: re-attach the persisted
            # columnar store so the chase adopts it without re-encoding
            attach_store_sidecar(
                engine.data(name),
                baseline_dir / rel_path,
                sidecar_path_for(baseline_dir, name),
                metrics=engine.metrics,
            )
    # re-admit the baseline's derived cubes: unchanged subgraphs then
    # keep these versions (skipped with outcome "clean") instead of
    # being recomputed
    for name, rel_path in state.get("cubes", {}).items():
        if engine.catalog.is_derived(name):
            cube = read_cube_csv(
                engine.catalog.schema_of(name), baseline_dir / rel_path
            )
            attach_store_sidecar(
                cube,
                baseline_dir / rel_path,
                sidecar_path_for(baseline_dir, name),
                metrics=engine.metrics,
            )
            engine.catalog.store.put(cube)
    restored = engine.runs.restore(state["record"])
    restored.baseline_versions = {
        name: engine.catalog.store.latest_version(name)
        for name in engine.catalog.store.names()
        if engine.catalog.has_data(name)
    }
    record = engine.update(
        changed=changed,
        against=restored.run_id,
        retries=args.retries,
        deadline_s=args.deadline,
        on_error=args.on_error,
        fault_plan=_fault_plan_from(args),
    )
    print(record.summary())
    code = _finish_run(engine, project, record, None, args, journal=journal)
    if code == 0:
        _persist_baseline(engine, record, out_dir, journal=journal)
        _finalize_success(out_dir, _state_path(args, out_dir), journal)
    return code


def cmd_run(args) -> int:
    project = load_project(args.project)
    out_dir = Path(args.out)
    tracer = Tracer() if args.trace else None
    metrics = MetricsRegistry() if (args.trace or args.metrics) else None
    journal = _journal_for(args, out_dir)
    engine = _build_engine(
        project,
        parallel=args.parallel,
        jobs=args.jobs,
        shards=args.shards,
        chase_cache=not args.no_chase_cache,
        vectorize=not args.no_vectorize,
        tracer=tracer,
        metrics=metrics,
        backoff_s=args.backoff,
        journal=journal,
        adaptive=args.adaptive,
        out_dir=out_dir,
    )
    try:
        record = engine.run(
            retries=args.retries,
            deadline_s=args.deadline,
            on_error=args.on_error,
            fault_plan=_fault_plan_from(args),
        )
    except ReproError:
        # fail-fast abort: the closed record still carries per-subgraph
        # outcomes, so persist the resumable state before surfacing it
        record = engine.runs.last()
        if record is not None and record.subgraphs:
            out_dir.mkdir(parents=True, exist_ok=True)
            _persist_state(
                engine, record.to_json(), out_dir, _state_path(args, out_dir)
            )
            if journal is not None:
                journal.discard()
            print(
                f"run aborted; state written to {_state_path(args, out_dir)}",
                file=sys.stderr,
            )
        raise
    finally:
        # the trace is most valuable when the run failed mid-chase
        if tracer is not None:
            tracer.write_chrome_trace(args.trace)
            print(f"wrote trace {args.trace} ({len(tracer.spans)} spans)",
                  file=sys.stderr)
    print(record.summary())
    if tracer is not None:
        print("\ntrace summary:")
        print(tracer.summary())
    if args.metrics:
        print("\nmetrics:")
        print(engine.metrics.render())
    code = _finish_run(engine, project, record, None, args, journal=journal)
    if code == 0:
        _persist_baseline(engine, record, out_dir=out_dir, journal=journal)
        _finalize_success(out_dir, _state_path(args, out_dir), journal)
    return code


def cmd_resume(args) -> int:
    project = load_project(args.project)
    out_dir = Path(args.out)
    state_path = _state_path(args, out_dir)
    if not state_path.exists():
        print(f"no run state at {state_path}: nothing to resume", file=sys.stderr)
        return 2
    state = _load_state_json(state_path, "run state", out_dir)
    if state is None:
        return EXIT_CORRUPT_STATE
    journal = _journal_for(args, out_dir)
    engine = _build_engine(
        project,
        parallel=args.parallel,
        jobs=args.jobs,
        shards=args.shards,
        chase_cache=not args.no_chase_cache,
        vectorize=not args.no_vectorize,
        backoff_s=args.backoff,
        journal=journal,
        adaptive=args.adaptive,
        out_dir=out_dir,
    )
    # re-admit the committed cubes of the interrupted run, then its
    # record; resume() re-dispatches only the failed/skipped subgraphs
    for name, rel_path in state.get("committed", {}).items():
        text = (out_dir / rel_path).read_bytes().decode("utf-8")
        cube = cube_from_csv_text(engine.catalog.schema_of(name), text)
        engine.catalog.store.put(cube)
        if journal is not None:
            # the snapshot text is in hand; let the epilogue reuse it
            # instead of re-serializing the re-admitted cube
            journal.adopt_snapshot(name, text)
    restored = engine.runs.restore(state["record"])
    todo = [
        s for s in state["record"].get("subgraphs", [])
        if s.get("outcome") not in COMMITTED_OUTCOMES
    ]
    if not todo:
        # every subgraph already committed (e.g. the crash hit after the
        # last commit but before cleanup): skip the dispatch entirely
        # and just re-run the durable epilogue
        print(
            f"run {restored.run_id}: all subgraphs already committed; "
            f"finalizing outputs"
        )
        code = _finish_run(
            engine, project, restored, state, args, journal=journal
        )
        if code == 0:
            _persist_baseline(engine, restored, out_dir=out_dir, journal=journal)
            _finalize_success(out_dir, state_path, journal)
        return code
    before = {
        name: len(engine.catalog.store.versions(name))
        for name in engine.catalog.store.names()
    }
    record = engine.resume(
        run_id=restored.run_id,
        retries=args.retries,
        deadline_s=args.deadline,
        on_error=args.on_error,
        fault_plan=_fault_plan_from(args),
    )
    print(record.summary())
    recomputed = [
        name
        for name, count in before.items()
        if engine.catalog.is_derived(name)
        and len(engine.catalog.store.versions(name)) > count
        and name not in record.affected
    ]
    if recomputed:  # pragma: no cover - guarded by the dispatcher
        print(f"warning: recomputed already-committed cubes {recomputed}",
              file=sys.stderr)
    code = _finish_run(engine, project, record, state, args, journal=journal)
    if code == 0:
        _persist_baseline(engine, record, out_dir=out_dir, journal=journal)
        _finalize_success(out_dir, state_path, journal)
    return code


def cmd_recover(args) -> int:
    """Replay the write-ahead journal after a hard crash.

    Rolls back torn writes, re-admits commits whose on-disk bytes still
    match their journalled checksums, and synthesizes a resumable
    ``run-state.json`` from the rest, so ``exl resume`` can finish the
    run no matter where the process died.
    """
    out_dir = Path(args.out)
    if not out_dir.exists():
        print(f"no output directory at {out_dir}: nothing to recover",
              file=sys.stderr)
        return 2
    state_path = Path(args.state) if args.state else None
    report = recover_out_dir(out_dir, state_path=state_path)
    print(report.summary())
    if report.status == "resumable":
        print(
            f"finish the run with: exl resume {args.project} --out {out_dir}"
        )
    return report.exit_code


def _parse_assignments(text: Optional[str], what: str) -> Dict[str, str]:
    """``"a=x,b=y"`` -> ``{"a": "x", "b": "y"}``."""
    out: Dict[str, str] = {}
    if not text:
        return out
    for part in text.split(","):
        if "=" not in part:
            raise ReproError(f"bad {what} {part!r}: expected dim=value")
        dim, _, value = part.partition("=")
        out[dim.strip()] = value.strip()
    return out


def _level_value(lattice, dim: str, level_name: str, text: str):
    """Parse one query value at the level ``dim`` is grouped at.

    Typed levels (base and calendar levels) parse through the level's
    dimension type; declared-grouping labels are opaque strings.
    """
    lvl = lattice.hierarchy(dim).level(level_name)
    if lvl.dtype is not None:
        return parse_dim_value(lvl.dtype, text)
    return text


def cmd_query(args) -> int:
    project = load_project(args.project)
    engine = _build_engine(project)
    out_dir = Path(args.out)
    baseline_dir, baseline_file = _baseline_paths(out_dir)
    # re-admit the persisted baseline so derived cubes are queryable
    # without re-running; elementary project CSVs are already loaded
    cube_csvs: Dict[str, Path] = {}
    if baseline_file.exists():
        state = _load_state_json(baseline_file, "baseline", out_dir)
        if state is None:
            return EXIT_CORRUPT_STATE
        for name, rel_path in state.get("cubes", {}).items():
            if name not in engine.catalog:
                continue
            path = baseline_dir / rel_path
            cube = read_cube_csv(engine.catalog.schema_of(name), path)
            attach_store_sidecar(
                cube, path, sidecar_path_for(baseline_dir, name),
                metrics=engine.metrics,
            )
            engine.catalog.store.put(cube)
            cube_csvs[name] = path
    name = args.cube
    if name not in engine.catalog:
        print(f"unknown cube {name!r}", file=sys.stderr)
        return 2
    if not engine.catalog.has_data(name):
        print(
            f"cube {name!r} has no data; run the project first: "
            f"exl run {args.project} --out {out_dir}",
            file=sys.stderr,
        )
        return 2
    service = engine.enable_olap(aggregate=args.agg)
    # attach the persisted lattice so warm queries skip the group-by;
    # a stale or missing sidecar just means one in-process build
    csv_path = cube_csvs.get(name)
    attached = False
    if csv_path is not None:
        lattice = service._new_lattice(name)
        attached = attach_lattice_sidecar(
            lattice,
            engine.catalog.store.get(name),
            csv_path,
            olap_sidecar_path_for(baseline_dir, name),
            version=engine.catalog.store.latest_version(name),
            metrics=engine.metrics,
        )
        if attached:
            service._live[name] = lattice
    lattice = service.lattice(name)
    levels = _parse_assignments(args.levels, "level assignment")
    if args.point:
        schema = engine.catalog.schema_of(name)
        coords = {}
        for dim, text in _parse_assignments(args.point, "coordinate").items():
            coords[dim] = parse_dim_value(
                schema.dimension(dim).dtype, text
            )
        print(format_measure(service.point(name, coords)))
    elif args.crosstab:
        dims = [d.strip() for d in args.crosstab.split(",")]
        if len(dims) != 2:
            print("--crosstab needs exactly two dimensions: row,col",
                  file=sys.stderr)
            return 2
        print(service.crosstab(name, dims[0], dims[1], levels=levels))
    elif args.slice:
        fixed = {
            dim: _level_value(
                lattice, dim, levels.get(dim, lattice.hierarchy(dim).levels[0].name), text
            )
            for dim, text in _parse_assignments(args.slice, "slice").items()
        }
        print(service.slice_(name, fixed, levels=levels).to_text())
    elif args.dice:
        ranges = {}
        for dim, text in _parse_assignments(args.dice, "dice").items():
            level_name = levels.get(dim, lattice.hierarchy(dim).levels[0].name)
            ranges[dim] = [
                _level_value(lattice, dim, level_name, v)
                for v in text.split("|")
            ]
        print(service.dice(name, ranges, levels=levels).to_text())
    elif args.drilldown:
        print(
            service.drilldown(name, levels, args.drilldown).to_text()
        )
    elif args.rollup or levels:
        print(service.rollup(name, levels=levels).to_text())
    else:
        # no query: describe what can be asked
        print(f"cube {name}: dimensions and levels")
        for hierarchy in lattice.hierarchies:
            print(
                f"  {hierarchy.dim.name}: {', '.join(hierarchy.level_names)}"
            )
        print(f"  groups materialized: {lattice.total_groups()}")
    if csv_path is not None and not attached:
        write_lattice_sidecar(
            service.lattice(name),
            csv_path,
            olap_sidecar_path_for(baseline_dir, name),
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EXLEngine reproduction: compile and run EXL statistical programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="print the generated schema mapping")
    show.add_argument("project")
    show.add_argument("--simplify", action="store_true", help="compose complex tgds")
    show.set_defaults(func=cmd_show)

    compile_cmd = sub.add_parser("compile", help="print a target-system script")
    compile_cmd.add_argument("project")
    compile_cmd.add_argument(
        "--target", default="sql", help="sql | r | matlab | etl | chase"
    )
    compile_cmd.add_argument("--simplify", action="store_true")
    compile_cmd.set_defaults(func=cmd_compile)

    explain = sub.add_parser("explain", help="print the determination plan")
    explain.add_argument("project")
    explain.set_defaults(func=cmd_explain)

    def add_execution_flags(command):
        command.add_argument(
            "--out", default="out", help="output directory for CSVs"
        )
        command.add_argument(
            "--parallel",
            action="store_true",
            help="execute independent strata/subgraphs concurrently "
            "(solution-equivalent to the sequential stratified chase)",
        )
        command.add_argument(
            "--jobs",
            type=int,
            default=4,
            metavar="N",
            help="worker threads for parallel waves (default: 4)",
        )
        command.add_argument(
            "--shards",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for sharded chase execution: "
            "elementary cubes are hash-partitioned on one dimension, "
            "chased per shard, and merged through the egd-checking "
            "insert (0 = one shard per CPU core, 1 = off; tuple-for-"
            "tuple equivalent to unsharded runs)",
        )
        command.add_argument(
            "--no-chase-cache",
            action="store_true",
            help="disable the cube-level chase materialization cache",
        )
        command.add_argument(
            "--no-vectorize",
            action="store_true",
            help="disable the columnar chase kernels and run the "
            "tuple-at-a-time chase (bit-exact ablation baseline)",
        )
        command.add_argument(
            "--adaptive",
            action="store_true",
            help="cost-based adaptive dispatch: pick each subgraph's "
            "target from learned per-signature execution timings "
            "(EWMA over clean attempt times, persisted under "
            "<out>/costs/); unmeasured targets fall back to the "
            "static assignment and are explored deterministically",
        )
        command.add_argument(
            "--retries",
            type=int,
            default=None,
            metavar="N",
            help="retry transient backend failures up to N times per "
            "subgraph, with exponential backoff and jitter (default: 0)",
        )
        command.add_argument(
            "--deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock deadline per subgraph execution (including "
            "its retries); overruns count as permanent failures",
        )
        command.add_argument(
            "--on-error",
            choices=["fail", "continue", "degrade"],
            default=None,
            help="partial-failure semantics: 'fail' aborts on the first "
            "failed subgraph (default); 'continue' keeps running "
            "independent subgraphs and skips dependents; 'degrade' "
            "additionally re-runs permanently-failed subgraphs on their "
            "fallback backend (the reference chase)",
        )
        command.add_argument(
            "--backoff",
            type=float,
            default=None,
            metavar="SECONDS",
            help="base retry backoff (default: 0.05s, doubling per retry)",
        )
        command.add_argument(
            "--inject-faults",
            metavar="SPEC",
            help="deterministic fault injection, e.g. "
            "'*:transient:p=0.3' or 'sql:permanent;r:delay:delay=0.1' "
            "(see repro.engine.faults for the grammar)",
        )
        command.add_argument(
            "--fault-seed",
            type=int,
            default=0,
            metavar="N",
            help="seed for the fault-injection plan (default: 0)",
        )
        command.add_argument(
            "--state",
            metavar="FILE",
            help="run-state file for resumable partial failures "
            "(default: <out>/run-state.json)",
        )
        command.add_argument(
            "--no-journal",
            action="store_true",
            help="skip the durable write-ahead journal "
            "(<out>/journal/*.wal); crashes then lose in-flight "
            "progress and 'exl recover' has nothing to replay",
        )

    run = sub.add_parser("run", help="execute the program and export CSVs")
    run.add_argument("project")
    add_execution_flags(run)
    run.add_argument(
        "--trace",
        metavar="FILE",
        help="record a hierarchical trace of the run (run -> wave -> "
        "tgd -> kernel phase) as Chrome trace-event JSON, loadable in "
        "chrome://tracing or Perfetto",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry (counters and histograms: "
        "tuples, cache hits, kernel fallbacks with reasons, wave "
        "widths/durations) after the run",
    )
    run.set_defaults(func=cmd_run)

    resume = sub.add_parser(
        "resume",
        help="finish a partially-failed run: re-dispatch only its "
        "failed/skipped subgraphs, reusing the committed cubes",
    )
    resume.add_argument("project")
    add_execution_flags(resume)
    resume.set_defaults(func=cmd_resume)

    update = sub.add_parser(
        "update",
        help="incremental run: diff the input CSVs against the "
        "persisted baseline (<out>/baseline/) and recompute only the "
        "affected subgraphs; without a baseline, runs in full",
    )
    update.add_argument("project")
    add_execution_flags(update)
    update.add_argument(
        "--against",
        type=int,
        default=None,
        metavar="RUN_ID",
        help="require the persisted baseline to be this run id "
        "(defensive pin; default: accept whatever baseline is there)",
    )
    update.set_defaults(func=cmd_update)

    recover_cmd = sub.add_parser(
        "recover",
        help="replay the write-ahead journal after a hard crash: roll "
        "back torn files, keep checksummed commits, and write a "
        "run-state.json that 'exl resume' can finish from",
    )
    recover_cmd.add_argument("project")
    recover_cmd.add_argument(
        "--out", default="out", help="output directory of the crashed run"
    )
    recover_cmd.add_argument(
        "--state",
        metavar="FILE",
        help="where to write the recovered run state "
        "(default: <out>/run-state.json)",
    )
    recover_cmd.set_defaults(func=cmd_recover)

    query = sub.add_parser(
        "query",
        help="OLAP queries over the computed cubes: point lookups, "
        "roll-ups along derived hierarchies, slice/dice, and cross-tabs "
        "with sub-totals — answered from the materialized roll-up "
        "lattice, not by re-aggregating CSVs",
    )
    query.add_argument("project")
    query.add_argument("cube", help="cube to query (elementary or derived)")
    query.add_argument(
        "--out", default="out", help="output directory of the prior run"
    )
    query.add_argument(
        "--agg",
        default="sum",
        metavar="NAME",
        help="measure aggregate for roll-ups (default: sum)",
    )
    query.add_argument(
        "--levels",
        metavar="DIM=LEVEL,...",
        help="level per dimension, e.g. 'm=quarter,r=zone'; unnamed "
        "dimensions stay at base, 'all' collapses a dimension",
    )
    query.add_argument(
        "--point",
        metavar="DIM=VALUE,...",
        help="the measure at one fully specified base coordinate",
    )
    query.add_argument(
        "--rollup",
        action="store_true",
        help="print the aggregates at --levels (the default action "
        "when --levels is given)",
    )
    query.add_argument(
        "--slice",
        metavar="DIM=VALUE,...",
        help="fix dimensions to single values and project them away",
    )
    query.add_argument(
        "--dice",
        metavar="DIM=V1|V2,...",
        help="filter dimensions to value sets",
    )
    query.add_argument(
        "--drilldown",
        metavar="DIM",
        help="refine DIM one level finer than --levels",
    )
    query.add_argument(
        "--crosstab",
        metavar="ROW,COL",
        help="print a cross-tab of two dimensions with row/column "
        "sub-totals and a grand total",
    )
    query.set_defaults(func=cmd_query)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
