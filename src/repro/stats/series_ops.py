"""Whole-series helper operators used by EXL black-box functions.

These act on ordered value lists (the values of a time series in time
order) and are the implementations behind EXL table functions such as
``cumsum``, ``standardize``, ``diff`` and ``interpolate``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..errors import StatsError

__all__ = ["cumsum", "standardize", "first_difference", "interpolate_gaps", "index_to_base"]


def cumsum(values: Sequence[float]) -> List[float]:
    """Running sum of the series."""
    out: List[float] = []
    total = 0.0
    for v in values:
        total += v
        out.append(total)
    return out


def standardize(values: Sequence[float]) -> List[float]:
    """Z-scores: (v - mean) / stddev.  Constant series raise."""
    if not values:
        return []
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    if var == 0:
        raise StatsError("cannot standardize a constant series")
    sd = math.sqrt(var)
    return [(v - mean) / sd for v in values]


def first_difference(values: Sequence[float]) -> List[float]:
    """v[i] - v[i-1]; one element shorter than the input."""
    return [b - a for a, b in zip(values, values[1:])]


def interpolate_gaps(values: Sequence[Optional[float]]) -> List[float]:
    """Linear interpolation of interior ``None`` gaps.

    Leading/trailing gaps are filled with the nearest known value.
    An all-``None`` series raises.
    """
    known = [(i, v) for i, v in enumerate(values) if v is not None]
    if not known:
        raise StatsError("cannot interpolate a series with no known values")
    out = list(values)
    first_i, first_v = known[0]
    for i in range(first_i):
        out[i] = first_v
    last_i, last_v = known[-1]
    for i in range(last_i + 1, len(out)):
        out[i] = last_v
    for (i0, v0), (i1, v1) in zip(known, known[1:]):
        for i in range(i0 + 1, i1):
            frac = (i - i0) / (i1 - i0)
            out[i] = v0 + frac * (v1 - v0)
    return [float(v) for v in out]


def index_to_base(values: Sequence[float], base_position: int = 0) -> List[float]:
    """Rebase the series so the value at ``base_position`` becomes 100."""
    if not values:
        return []
    if not 0 <= base_position < len(values):
        raise StatsError(f"base position {base_position} out of range")
    base = values[base_position]
    if base == 0:
        raise StatsError("cannot rebase on a zero value")
    return [100.0 * v / base for v in values]
