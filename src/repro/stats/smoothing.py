"""Smoothers for time series: moving averages and loess.

The seasonal decomposition operator (``stl``) of the paper is built on
these.  ``loess`` is a from-scratch implementation of locally weighted
linear regression with tricube weights — the smoother at the core of
Cleveland's STL procedure — so the reproduction does not depend on R.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import StatsError

__all__ = ["moving_average", "centered_moving_average", "loess"]


def moving_average(values: Sequence[float], window: int) -> List[float]:
    """Trailing moving average; the first ``window - 1`` outputs average
    whatever prefix is available (expanding window).
    """
    if window < 1:
        raise StatsError(f"window must be >= 1, got {window}")
    arr = np.asarray(values, dtype=float)
    out: List[float] = []
    running = 0.0
    for i, v in enumerate(arr):
        running += v
        if i >= window:
            running -= arr[i - window]
        out.append(running / min(i + 1, window))
    return out


def centered_moving_average(values: Sequence[float], window: int) -> List[float]:
    """Centered moving average as used in classical decomposition.

    For an even window a 2×MA is used (the standard trick: a window+1
    span with half weights at the ends), so the result stays centered.
    Endpoints where the full window does not fit shrink symmetrically.
    """
    if window < 1:
        raise StatsError(f"window must be >= 1, got {window}")
    arr = np.asarray(values, dtype=float)
    n = len(arr)
    out = np.empty(n)
    if window % 2 == 1:
        half = window // 2
        weights = np.ones(window) / window
    else:
        half = window // 2
        weights = np.ones(window + 1)
        weights[0] = weights[-1] = 0.5
        weights /= window
    span = len(weights)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        w = weights[(lo - (i - half)):(span - ((i + half + 1) - hi))]
        chunk = arr[lo:hi]
        out[i] = float(np.dot(chunk, w) / w.sum())
    return out.tolist()


def _tricube(u: np.ndarray) -> np.ndarray:
    clipped = np.clip(np.abs(u), 0.0, 1.0)
    return (1.0 - clipped**3) ** 3


def loess(
    values: Sequence[float],
    frac: float = 0.5,
    degree: int = 1,
    x: Sequence[float] = None,
) -> List[float]:
    """Locally weighted polynomial regression (loess) smoother.

    For each point, fits a weighted polynomial of the given ``degree``
    to the nearest ``ceil(frac * n)`` neighbours using tricube weights
    and evaluates it at the point.

    Args:
        values: the series to smooth.
        frac: fraction of the series used in each local fit (0 < frac <= 1).
        degree: 0 (local constant), 1 (local linear) or 2 (local quadratic).
        x: optional abscissae; defaults to 0..n-1.

    Returns:
        The smoothed series, same length as ``values``.
    """
    if not 0.0 < frac <= 1.0:
        raise StatsError(f"frac must be in (0, 1], got {frac}")
    if degree not in (0, 1, 2):
        raise StatsError(f"degree must be 0, 1 or 2, got {degree}")
    y = np.asarray(values, dtype=float)
    n = len(y)
    if n == 0:
        return []
    xs = np.arange(n, dtype=float) if x is None else np.asarray(x, dtype=float)
    if len(xs) != n:
        raise StatsError("x and values must have the same length")
    k = max(degree + 1, int(np.ceil(frac * n)))
    k = min(k, n)
    out = np.empty(n)
    for i in range(n):
        distances = np.abs(xs - xs[i])
        # the k nearest neighbours define the local window
        idx = np.argpartition(distances, k - 1)[:k]
        local_x = xs[idx]
        local_y = y[idx]
        span = distances[idx].max()
        if span == 0:
            out[i] = local_y.mean()
            continue
        w = _tricube(distances[idx] / span)
        if w.sum() == 0:
            w = np.ones_like(w)
        if degree == 0:
            out[i] = float(np.average(local_y, weights=w))
        else:
            # weighted polynomial fit via the normal equations
            design = np.vander(local_x - xs[i], degree + 1, increasing=True)
            wd = design * w[:, None]
            coeffs, *_ = np.linalg.lstsq(wd.T @ design, wd.T @ local_y, rcond=None)
            out[i] = float(coeffs[0])  # polynomial evaluated at the centre
    return out.tolist()
