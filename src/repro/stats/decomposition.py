"""Seasonal decomposition of time series.

The paper's black-box multi-tuple operator ``stl`` decomposes a series
into trend, seasonal and remainder components; ``stl_T`` extracts the
trend (tgd (4)).  Two from-scratch procedures are provided:

* :func:`classical_decompose` — the textbook moving-average method
  (Brockwell & Davis, the paper's reference [7]).
* :func:`stl_decompose` — an STL-style iterative procedure: alternating
  loess smoothing of the deseasonalized series (trend) and of the
  cycle-subseries (seasonal), as in Cleveland et al.'s STL.

Both return a :class:`Decomposition` with ``trend + seasonal +
remainder == series`` (additive model) guaranteed by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import StatsError
from .smoothing import centered_moving_average, loess

__all__ = [
    "Decomposition",
    "classical_decompose",
    "stl_decompose",
    "stl_trend",
    "stl_seasonal",
    "stl_remainder",
]


@dataclass
class Decomposition:
    """Additive decomposition: series = trend + seasonal + remainder."""

    trend: List[float]
    seasonal: List[float]
    remainder: List[float]

    def reconstruct(self) -> List[float]:
        return [t + s + r for t, s, r in zip(self.trend, self.seasonal, self.remainder)]


def _validate(values: Sequence[float], period: int) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if period < 2:
        raise StatsError(f"period must be >= 2, got {period}")
    if len(arr) < 2 * period:
        raise StatsError(
            f"series too short for decomposition: {len(arr)} points, "
            f"need at least {2 * period} (two full periods)"
        )
    return arr


def _seasonal_means(detrended: np.ndarray, period: int) -> np.ndarray:
    """Per-phase means of the detrended series, centred to sum to zero."""
    phases = np.empty(period)
    for p in range(period):
        phases[p] = detrended[p::period].mean()
    phases -= phases.mean()
    return phases


def classical_decompose(values: Sequence[float], period: int) -> Decomposition:
    """Classical additive decomposition via centered moving average."""
    arr = _validate(values, period)
    trend = np.asarray(centered_moving_average(arr, period))
    detrended = arr - trend
    phases = _seasonal_means(detrended, period)
    seasonal = np.resize(phases, len(arr))
    remainder = arr - trend - seasonal
    return Decomposition(trend.tolist(), seasonal.tolist(), remainder.tolist())


def stl_decompose(
    values: Sequence[float],
    period: int,
    iterations: int = 2,
    trend_frac: float = None,
    seasonal_frac: float = 0.75,
) -> Decomposition:
    """STL-style decomposition by iterated loess.

    Each iteration (i) removes the current seasonal, (ii) smooths the
    deseasonalized series with loess to update the trend, (iii) smooths
    each cycle-subseries of the detrended series with loess to update
    the seasonal, re-centred per cycle position so seasonals sum to ~0.

    Args:
        values: the series.
        period: observations per seasonal cycle (e.g. 4 for quarterly).
        iterations: outer loop count; 2 is usually enough.
        trend_frac: loess span for the trend; defaults to a span of
            about 1.5 periods, mirroring STL's default trend window.
        seasonal_frac: loess span for cycle-subseries smoothing; the
            STL-with-``"periodic"`` behaviour of the paper's R listing
            corresponds to averaging the subseries, which a wide span
            approximates.
    """
    arr = _validate(values, period)
    n = len(arr)
    if trend_frac is None:
        trend_frac = min(1.0, (1.5 * period + 1) / n)
    seasonal = np.zeros(n)
    trend = np.zeros(n)
    for _ in range(max(1, iterations)):
        deseasonalized = arr - seasonal
        trend = np.asarray(loess(deseasonalized, frac=trend_frac, degree=1))
        detrended = arr - trend
        for p in range(period):
            subseries = detrended[p::period]
            if len(subseries) >= 2:
                smoothed = np.asarray(loess(subseries, frac=seasonal_frac, degree=0))
            else:
                smoothed = subseries.copy()
            seasonal[p::period] = smoothed
        # centre so the seasonal sums to approximately zero over a cycle
        seasonal -= seasonal.mean()
    remainder = arr - trend - seasonal
    return Decomposition(trend.tolist(), seasonal.tolist(), remainder.tolist())


def stl_trend(values: Sequence[float], period: int) -> List[float]:
    """The trend component — the paper's ``stl_T`` operator."""
    return stl_decompose(values, period).trend


def stl_seasonal(values: Sequence[float], period: int) -> List[float]:
    """The seasonal component (``stl_S``)."""
    return stl_decompose(values, period).seasonal


def stl_remainder(values: Sequence[float], period: int) -> List[float]:
    """The remainder component (``stl_R``)."""
    return stl_decompose(values, period).remainder
