"""Aggregation functions over bags of measure values.

These back EXL's summarization operators (``sum``, ``avg``, ``median``,
``stddev`` …, Section 3) and are shared by every executor: the chase
applies them directly, the SQL engine exposes them as aggregate
functions, the dataframe engine uses them in group-by, and the ETL
engine in its aggregation step.  All operate on *bags* — repeated
elements are meaningful, as the paper stresses.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

from ..errors import StatsError

__all__ = ["AGGREGATES", "get_aggregate", "aggregate_names", "canonical_bag"]


def _require_nonempty(values: Sequence[float], name: str) -> None:
    if not values:
        raise StatsError(f"aggregate {name}() applied to an empty bag")


def canonical_bag(values: Sequence[float]) -> List[float]:
    """The bag in canonical (ascending numeric) order.

    Every registered aggregate is a function of the value *multiset*,
    but the float results of the fold-based ones (sum, avg, var,
    product, geomean) depend on fold order.  Those implementations
    reduce the bag in this canonical order, which makes every
    executor's aggregation results independent of operand enumeration
    order — and is what lets an incremental recomputation of a single
    group reproduce a full rerun bit for bit.  NaNs sort first, stably
    among themselves.
    """
    return sorted(values, key=lambda v: (v == v, v if v == v else 0.0))


def agg_sum(values: Sequence[float]) -> float:
    """Sum of the bag; the paper's tgd (3) aggregation."""
    _require_nonempty(values, "sum")
    return float(sum(canonical_bag(values)))


def agg_avg(values: Sequence[float]) -> float:
    """Arithmetic mean; used in tgd (1) for the quarterly population."""
    _require_nonempty(values, "avg")
    return float(sum(canonical_bag(values))) / len(values)


def agg_min(values: Sequence[float]) -> float:
    _require_nonempty(values, "min")
    return float(min(values))


def agg_max(values: Sequence[float]) -> float:
    _require_nonempty(values, "max")
    return float(max(values))


def agg_count(values: Sequence[float]) -> float:
    return float(len(values))


def agg_median(values: Sequence[float]) -> float:
    """Median with midpoint interpolation for even-sized bags."""
    _require_nonempty(values, "median")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def agg_var(values: Sequence[float]) -> float:
    """Population variance (denominator n)."""
    _require_nonempty(values, "var")
    mean = agg_avg(values)
    return sum((v - mean) ** 2 for v in canonical_bag(values)) / len(values)


def agg_stddev(values: Sequence[float]) -> float:
    """Population standard deviation."""
    return math.sqrt(agg_var(values))


def agg_product(values: Sequence[float]) -> float:
    _require_nonempty(values, "product")
    result = 1.0
    for v in canonical_bag(values):
        result *= v
    return result


def agg_range(values: Sequence[float]) -> float:
    """max - min of the bag."""
    _require_nonempty(values, "range")
    return float(max(values) - min(values))


def agg_geomean(values: Sequence[float]) -> float:
    """Geometric mean; requires strictly positive values."""
    _require_nonempty(values, "geomean")
    if any(v <= 0 for v in values):
        raise StatsError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in canonical_bag(values)) / len(values))


AGGREGATES: Dict[str, Callable[[Sequence[float]], float]] = {
    "sum": agg_sum,
    "avg": agg_avg,
    "mean": agg_avg,
    "min": agg_min,
    "max": agg_max,
    "count": agg_count,
    "median": agg_median,
    "var": agg_var,
    "stddev": agg_stddev,
    "product": agg_product,
    "range": agg_range,
    "geomean": agg_geomean,
}


def get_aggregate(name: str) -> Callable[[Sequence[float]], float]:
    """Look up an aggregation function by (case-insensitive) name."""
    try:
        return AGGREGATES[name.lower()]
    except KeyError:
        raise StatsError(f"unknown aggregate function {name!r}") from None


def aggregate_names() -> List[str]:
    return sorted(AGGREGATES)
