"""Statistical operator implementations shared by every executor.

This package replaces the statistical capabilities the paper borrows
from R and Matlab (seasonal decomposition, regression, smoothing,
aggregations), per the substitution rule in DESIGN.md §7.
"""

from .aggregates import AGGREGATES, aggregate_names, get_aggregate
from .decomposition import (
    Decomposition,
    classical_decompose,
    stl_decompose,
    stl_remainder,
    stl_seasonal,
    stl_trend,
)
from .regression import LinearFit, fitted_line, ols, residuals
from .series_ops import (
    cumsum,
    first_difference,
    index_to_base,
    interpolate_gaps,
    standardize,
)
from .smoothing import centered_moving_average, loess, moving_average

__all__ = [
    "AGGREGATES",
    "get_aggregate",
    "aggregate_names",
    "Decomposition",
    "classical_decompose",
    "stl_decompose",
    "stl_trend",
    "stl_seasonal",
    "stl_remainder",
    "LinearFit",
    "ols",
    "fitted_line",
    "residuals",
    "cumsum",
    "standardize",
    "first_difference",
    "interpolate_gaps",
    "index_to_base",
    "moving_average",
    "centered_moving_average",
    "loess",
]
