"""Linear regression, one of EXL's complex statistical operators.

Ordinary least squares implemented via numpy's least-squares solver.
EXL exposes three whole-cube operators on time series built on this:
``linreg_fit`` (fitted values), ``linreg_resid`` (residuals) and
``detrend`` (alias of residuals against time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import StatsError

__all__ = ["LinearFit", "ols", "fitted_line", "residuals"]


@dataclass
class LinearFit:
    """Result of a univariate OLS fit ``y ≈ intercept + slope * x``."""

    intercept: float
    slope: float
    r_squared: float

    def predict(self, x: Sequence[float]) -> List[float]:
        return [self.intercept + self.slope * xi for xi in np.asarray(x, dtype=float)]


def ols(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Fit ``y ≈ a + b x`` by ordinary least squares."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if len(xs) != len(ys):
        raise StatsError("x and y must have the same length")
    if len(xs) < 2:
        raise StatsError("need at least 2 points for a linear fit")
    design = np.column_stack([np.ones(len(xs)), xs])
    coeffs, *_ = np.linalg.lstsq(design, ys, rcond=None)
    intercept, slope = float(coeffs[0]), float(coeffs[1])
    predicted = design @ coeffs
    ss_res = float(np.sum((ys - predicted) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(intercept, slope, r_squared)


def fitted_line(values: Sequence[float]) -> List[float]:
    """OLS fitted values of a series regressed on its time index."""
    fit = ols(range(len(values)), values)
    return fit.predict(range(len(values)))


def residuals(values: Sequence[float]) -> List[float]:
    """OLS residuals of a series regressed on its time index."""
    fitted = fitted_line(values)
    return [v - f for v, f in zip(values, fitted)]
