"""Canned EXL programs and their synthetic input data.

:func:`gdp_example` is the paper's Section 2 program verbatim —
percentage change of the GDP trend from population and per-capita
data.  The other workloads exercise further operator mixes and are
used by examples, tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..model.cube import Cube, CubeSchema, Dimension
from ..model.schema import Schema
from ..model.time import Frequency, day, month, quarter
from ..model.types import STRING, TIME
from . import datagen

__all__ = ["Workload", "gdp_example", "price_index_example", "employment_example"]


@dataclass
class Workload:
    """A ready-to-run statistical program: schema + EXL source + data."""

    name: str
    schema: Schema
    source: str
    data: Dict[str, Cube]

    @property
    def cubes(self) -> Dict[str, Cube]:
        return self.data


GDP_PROGRAM = """\
# Section 2 of the paper: percentage change of the GDP trend.
PQR := avg(PDR, group by quarter(d) as q, r)
RGDP := PQR * RGDPPC
GDP := sum(RGDP, group by q)
GDPT := stl_t(GDP)
PCHNG := (GDPT - shift(GDPT, 1)) * 100 / GDPT
"""


def gdp_example(
    regions: Sequence[str] = datagen.DEFAULT_REGIONS,
    n_quarters: int = 24,
    seed: int = 7,
) -> Workload:
    """The paper's GDP program with synthetic population/per-capita data.

    ``n_quarters`` quarters of data are generated; the population panel
    covers the same span in days (approximated as 90 days per quarter so
    each quarter is populated).
    """
    start_q = quarter(2010, 1)
    pdr = datagen.population_panel(
        regions, start=day(2010, 1, 1), n_days=n_quarters * 91, seed=seed
    )
    rgdppc = datagen.per_capita_panel(
        regions, start=start_q, n_quarters=n_quarters, seed=seed + 1
    )
    schema = Schema([pdr.schema, rgdppc.schema], "gdp_source")
    return Workload("gdp", schema, GDP_PROGRAM, {"PDR": pdr, "RGDPPC": rgdppc})


PRICE_INDEX_PROGRAM = """\
# A consumer price basket: weighted item prices -> monthly index,
# yearly average inflation.
WPRICE := PRICE * WEIGHT
BASKET := sum(WPRICE, group by m)
BASKET_MA := ma(BASKET, 3)
YAVG := avg(BASKET, group by year(m) as y)
LBASKET := ln(BASKET)
INFL := (BASKET - shift(BASKET, 1)) * 100 / shift(BASKET, 1)
"""


def price_index_example(
    items: Sequence[str] = ("food", "energy", "rent", "transport"),
    n_months: int = 48,
    seed: int = 11,
) -> Workload:
    """Price-basket workload: vectorial product, sums, ma, ln, shifts."""
    start_m = month(2012, 1)
    price_schema = CubeSchema(
        "PRICE",
        [Dimension("m", TIME(Frequency.MONTH)), Dimension("item", STRING)],
        "v",
    )
    weight_schema = CubeSchema(
        "WEIGHT",
        [Dimension("m", TIME(Frequency.MONTH)), Dimension("item", STRING)],
        "w",
    )
    price = Cube(price_schema)
    weight = Cube(weight_schema)
    import numpy as np

    rng = np.random.default_rng(seed)
    for j, item in enumerate(items):
        base = 50.0 + 20.0 * j
        for i in range(n_months):
            level = base * (1.0 + 0.002 * i) + rng.normal(0.0, 0.5)
            price.set((start_m + i, item), float(level))
            weight.set((start_m + i, item), float(0.1 + 0.05 * j))
    schema = Schema([price_schema, weight_schema], "prices_source")
    return Workload(
        "price_index",
        schema,
        PRICE_INDEX_PROGRAM,
        {"PRICE": price, "WEIGHT": weight},
    )


EMPLOYMENT_PROGRAM = """\
# Employment statistics: monthly employment and labour force by region,
# the national unemployment rate and its deseasonalized trend.
EMP_N := sum(EMP, group by m)
LF_N := sum(LF, group by m)
UNEMP := LF_N - EMP_N
URATE := UNEMP * 100 / LF_N
URATE_T := stl_t(URATE)
URATE_Q := avg(URATE, group by quarter(m) as q)
"""


def employment_example(
    regions: Sequence[str] = datagen.DEFAULT_REGIONS,
    n_months: int = 60,
    seed: int = 23,
) -> Workload:
    """Employment workload: aggregations, vectorial ops, stl, requarterly."""
    start_m = month(2011, 1)
    emp_schema = CubeSchema(
        "EMP",
        [Dimension("m", TIME(Frequency.MONTH)), Dimension("r", STRING)],
        "n",
    )
    lf_schema = CubeSchema(
        "LF",
        [Dimension("m", TIME(Frequency.MONTH)), Dimension("r", STRING)],
        "n",
    )
    import numpy as np

    rng = np.random.default_rng(seed)
    emp = Cube(emp_schema)
    lf = Cube(lf_schema)
    for j, region in enumerate(regions):
        base = 400_000.0 * (1 + 0.4 * j)
        for i in range(n_months):
            seasonal = 0.02 * np.sin(2 * np.pi * i / 12 + j)
            employed = base * (1.0 + 0.001 * i + seasonal) + rng.normal(0, 800)
            force = employed * (1.0 + 0.08 + 0.01 * np.sin(2 * np.pi * i / 12))
            emp.set((start_m + i, region), float(employed))
            lf.set((start_m + i, region), float(force))
    schema = Schema([emp_schema, lf_schema], "employment_source")
    return Workload(
        "employment", schema, EMPLOYMENT_PROGRAM, {"EMP": emp, "LF": lf}
    )
