"""Random EXL program generation for stress and property testing.

Generates valid programs over randomly shaped elementary cubes, biased
toward the operator mix of real statistical programs (arithmetic,
shifts, aggregations, a few whole-series operators).  Programs are
always acyclic and type-correct by construction, so every generated
program must run identically on every backend — the property the
equivalence tests check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..model.cube import Cube, CubeSchema, Dimension
from ..model.schema import Schema
from ..model.time import Frequency, month, quarter
from ..model.types import STRING, TIME
from .datagen import random_cube
from .programs import Workload

__all__ = ["RandomProgramGenerator", "random_workload"]

_REGION_DOMAIN = ["north", "centre", "south", "islands", "abroad"]


@dataclass
class _CubeInfo:
    name: str
    schema: CubeSchema


class RandomProgramGenerator:
    """Generates one random workload per :meth:`generate` call."""

    def __init__(
        self,
        seed: int = 0,
        n_elementary: int = 2,
        n_statements: int = 6,
        n_periods: int = 16,
        n_regions: int = 3,
        allow_table_functions: bool = True,
    ):
        self.rng = random.Random(seed)
        self.n_elementary = max(1, n_elementary)
        self.n_statements = max(1, n_statements)
        self.n_periods = max(8, n_periods)
        self.n_regions = max(1, min(n_regions, len(_REGION_DOMAIN)))
        self.allow_table_functions = allow_table_functions

    # -- public ----------------------------------------------------------
    def generate(self) -> Workload:
        elementary = self._elementary_cubes()
        statements: List[str] = []
        derived: List[_CubeInfo] = []
        available: List[_CubeInfo] = list(elementary)
        for i in range(self.n_statements):
            name = f"D{i + 1}"
            line, schema = self._statement(name, available)
            statements.append(line)
            info = _CubeInfo(name, schema)
            derived.append(info)
            available.append(info)
        schema = Schema((c.schema for c in elementary), "random_source")
        data = {
            c.name: self._data_for(c.schema, seed=self.rng.randrange(1 << 30))
            for c in elementary
        }
        return Workload("random", schema, "\n".join(statements), data)

    # -- elementary cubes -------------------------------------------------------
    def _elementary_cubes(self) -> List[_CubeInfo]:
        cubes = []
        # always at least one panel cube (time + region) so vectorial and
        # aggregation operators have something to chew on
        base = CubeSchema(
            "E1",
            [
                Dimension("m", TIME(Frequency.MONTH)),
                Dimension("r", STRING),
            ],
            "v",
        )
        cubes.append(_CubeInfo("E1", base))
        for i in range(1, self.n_elementary):
            name = f"E{i + 1}"
            if self.rng.random() < 0.5:
                schema = CubeSchema(name, base.dimensions, "v")
            else:
                schema = CubeSchema(
                    name, [Dimension("m", TIME(Frequency.MONTH))], "v"
                )
            cubes.append(_CubeInfo(name, schema))
        return cubes

    def _data_for(self, schema: CubeSchema, seed: int) -> Cube:
        domains: Dict[str, list] = {}
        start = month(2015, 1)
        for dim in schema.dimensions:
            if dim.dtype.is_time:
                domains[dim.name] = [start + i for i in range(self.n_periods)]
            else:
                domains[dim.name] = _REGION_DOMAIN[: self.n_regions]
        return random_cube(schema, domains, seed)

    # -- statements -------------------------------------------------------------
    def _statement(
        self, name: str, available: List[_CubeInfo]
    ) -> Tuple[str, CubeSchema]:
        choices = ["scalar", "scalar", "vectorial", "aggregate", "shift", "outer"]
        if self.allow_table_functions:
            choices.append("table_function")
        kind = self.rng.choice(choices)
        if kind == "vectorial":
            pairs = self._same_dim_pairs(available)
            if pairs:
                left, right = self.rng.choice(pairs)
                op = self.rng.choice(["+", "-", "*"])
                return f"{name} := {left.name} {op} {right.name}", left.schema.renamed(name)
            kind = "scalar"
        if kind == "outer":
            pairs = self._same_dim_pairs(available)
            if pairs:
                left, right = self.rng.choice(pairs)
                op = self.rng.choice(["osum", "odiff", "oprod"])
                return (
                    f"{name} := {op}({left.name}, {right.name})",
                    left.schema.renamed(name),
                )
            kind = "scalar"
        if kind == "aggregate":
            panels = [c for c in available if c.schema.arity >= 2]
            if panels:
                return self._aggregate(name, self.rng.choice(panels))
            kind = "scalar"
        if kind == "shift":
            series = [c for c in available if c.schema.is_time_series]
            if series:
                operand = self.rng.choice(series)
                periods = self.rng.choice([1, 2, -1])
                return (
                    f"{name} := shift({operand.name}, {periods})",
                    operand.schema.renamed(name),
                )
            kind = "scalar"
        if kind == "table_function":
            series = [c for c in available if c.schema.is_time_series]
            if series:
                operand = self.rng.choice(series)
                func = self.rng.choice(["ma", "cumsum", "fitted", "detrend"])
                call = (
                    f"ma({operand.name}, {self.rng.choice([2, 3, 4])})"
                    if func == "ma"
                    else f"{func}({operand.name})"
                )
                return f"{name} := {call}", operand.schema.renamed(name)
            kind = "scalar"
        # scalar fallback always succeeds
        operand = self.rng.choice(available)
        template = self.rng.choice(
            [
                "{n} := {c} * {k}",
                "{n} := {c} + {k}",
                "{n} := {c} / {k}",
                "{n} := abs({c})",
                "{n} := {c} * {k} + {c2}",
            ]
        )
        k = self.rng.choice([2, 3, 5, 10, 0.5])
        if "{c2}" in template:
            same = [c for c in self._same_dim_partners(operand, available)]
            if same:
                partner = self.rng.choice(same)
                line = template.format(n=name, c=operand.name, k=k, c2=partner.name)
                return line, operand.schema.renamed(name)
            template = "{n} := {c} * {k}"
        line = template.format(n=name, c=operand.name, k=k)
        return line, operand.schema.renamed(name)

    def _aggregate(
        self, name: str, operand: _CubeInfo
    ) -> Tuple[str, CubeSchema]:
        schema = operand.schema
        func = self.rng.choice(["sum", "avg", "min", "max", "median"])
        time_dim = schema.time_dimensions[0]
        mode = self.rng.random()
        if mode < 0.4:
            # aggregate away the non-time dimensions
            line = f"{name} := {func}({schema.name}, group by {time_dim.name})"
            result = CubeSchema(name, [time_dim], schema.measure)
        elif mode < 0.7 and time_dim.dtype.freq is Frequency.MONTH:
            # change the sampling frequency
            line = (
                f"{name} := {func}({schema.name}, group by "
                f"quarter({time_dim.name}) as q)"
            )
            result = CubeSchema(
                name, [Dimension("q", TIME(Frequency.QUARTER))], schema.measure
            )
        else:
            other = [d for d in schema.dimensions if d is not time_dim][0]
            line = f"{name} := {func}({schema.name}, group by {other.name})"
            result = CubeSchema(name, [other], schema.measure)
        return line, result

    def _same_dim_pairs(
        self, available: List[_CubeInfo]
    ) -> List[Tuple[_CubeInfo, _CubeInfo]]:
        pairs = []
        for i, left in enumerate(available):
            for right in available[i:]:
                if left.schema.dimensions == right.schema.dimensions:
                    pairs.append((left, right))
        return pairs

    def _same_dim_partners(
        self, cube: _CubeInfo, available: List[_CubeInfo]
    ) -> List[_CubeInfo]:
        return [
            c
            for c in available
            if c.schema.dimensions == cube.schema.dimensions
        ]


def random_workload(seed: int = 0, **kwargs) -> Workload:
    """One random workload (see :class:`RandomProgramGenerator`)."""
    return RandomProgramGenerator(seed=seed, **kwargs).generate()
