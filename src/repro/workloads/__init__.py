"""Synthetic workloads: data generators and canned EXL programs."""

from .datagen import (
    DEFAULT_REGIONS,
    per_capita_panel,
    population_panel,
    random_cube,
    seasonal_series,
    series_cube,
)
from .programs import (
    Workload,
    employment_example,
    gdp_example,
    price_index_example,
)
from .randprog import RandomProgramGenerator, random_workload
from .scenarios import (
    deep_chain_workload,
    revision_storm,
    scenario_corpus,
    skewed_panel_workload,
)

__all__ = [
    "seasonal_series",
    "series_cube",
    "population_panel",
    "per_capita_panel",
    "random_cube",
    "DEFAULT_REGIONS",
    "Workload",
    "gdp_example",
    "price_index_example",
    "employment_example",
    "RandomProgramGenerator",
    "random_workload",
    "skewed_panel_workload",
    "deep_chain_workload",
    "revision_storm",
    "scenario_corpus",
]
