"""Synthetic statistical data generators.

The Bank of Italy's production data is not available, so these
generators build the closest synthetic equivalents (DESIGN.md §7):
seasonal time series with trend + seasonal + noise structure, daily
population panels, and quarterly per-capita indicators — everything
the paper's GDP example and the benchmarks need.  All generators take
a seed and are fully deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..model.cube import Cube, CubeSchema, Dimension
from ..model.time import Frequency, TimePoint, day, quarter
from ..model.types import STRING, TIME

__all__ = [
    "seasonal_series",
    "series_cube",
    "population_panel",
    "per_capita_panel",
    "random_cube",
    "DEFAULT_REGIONS",
]

DEFAULT_REGIONS = ("north", "centre", "south", "islands")


def seasonal_series(
    n: int,
    period: int = 4,
    base: float = 100.0,
    trend: float = 0.8,
    amplitude: float = 6.0,
    noise: float = 1.0,
    seed: int = 0,
) -> List[float]:
    """A trend + seasonal + noise series of length ``n``."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    values = (
        base
        + trend * t
        + amplitude * np.sin(2 * np.pi * t / period)
        + rng.normal(0.0, noise, n)
    )
    return values.tolist()


def series_cube(
    name: str,
    start: TimePoint,
    values: Sequence[float],
    dim_name: str = "t",
    measure: str = "value",
) -> Cube:
    """Wrap a value list into a time-series cube starting at ``start``."""
    schema = CubeSchema(name, [Dimension(dim_name, TIME(start.freq))], measure)
    return Cube.from_series(schema, start, list(values))


def population_panel(
    regions: Sequence[str] = DEFAULT_REGIONS,
    start: TimePoint = None,
    n_days: int = 360,
    base: float = 1_000_000.0,
    growth: float = 25.0,
    noise: float = 500.0,
    seed: int = 1,
    name: str = "PDR",
) -> Cube:
    """The paper's PDR(d, r): population of region r at end of day d."""
    if start is None:
        start = day(2010, 1, 1)
    rng = np.random.default_rng(seed)
    schema = CubeSchema(
        name,
        [Dimension("d", TIME(Frequency.DAY)), Dimension("r", STRING)],
        "p",
    )
    cube = Cube(schema)
    for j, region in enumerate(regions):
        level = base * (1.0 + 0.3 * j)
        for i in range(n_days):
            value = level + growth * i + rng.normal(0.0, noise)
            cube.set((start + i, region), float(value))
    return cube


def per_capita_panel(
    regions: Sequence[str] = DEFAULT_REGIONS,
    start: TimePoint = None,
    n_quarters: int = 24,
    base: float = 7.0,
    trend: float = 0.05,
    amplitude: float = 0.6,
    noise: float = 0.05,
    seed: int = 2,
    name: str = "RGDPPC",
) -> Cube:
    """The paper's RGDPPC(q, r): per-capita regional GDP by quarter."""
    if start is None:
        start = quarter(2010, 1)
    rng = np.random.default_rng(seed)
    schema = CubeSchema(
        name,
        [Dimension("q", TIME(Frequency.QUARTER)), Dimension("r", STRING)],
        "g",
    )
    cube = Cube(schema)
    for j, region in enumerate(regions):
        level = base * (1.0 + 0.15 * j)
        for i in range(n_quarters):
            value = (
                level
                + trend * i
                + amplitude * np.sin(2 * np.pi * i / 4 + j)
                + rng.normal(0.0, noise)
            )
            cube.set((start + i, region), float(value))
    return cube


def random_cube(schema: CubeSchema, domains: Dict[str, List], seed: int = 0) -> Cube:
    """A dense random cube over the cartesian product of ``domains``.

    ``domains`` maps each dimension name to the list of values it
    ranges over; measures are drawn uniformly from [1, 100).
    """
    rng = np.random.default_rng(seed)
    cube = Cube(schema)
    keys: List[Tuple] = [()]
    for dim in schema.dimensions:
        values = domains[dim.name]
        keys = [key + (v,) for key in keys for v in values]
    for key in keys:
        cube.set(key, float(rng.uniform(1.0, 100.0)))
    return cube
