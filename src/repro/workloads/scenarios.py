"""Scenario corpus: workload shapes real statistical production hits.

The random program generator (:mod:`.randprog`) explores the operator
space uniformly; this module instead builds the *adversarial* shapes
ROADMAP's scenario-corpus item calls out — the ones that spread targets'
relative costs apart and stress the delta path:

* **Skewed panels** — a high-cardinality dimension where a few members
  hold most of the data (zipf-style coverage), so per-group work is
  wildly unbalanced and operand cardinality stops predicting cost.
* **Deep aggregation chains** — long dependency chains alternating
  aggregation, whole-series table functions, and scalar arithmetic, so
  runs have many narrow waves instead of one wide one.
* **Revision storms** — sequences of small random revisions to the
  elementary data, the input feed for ``EXLEngine.update`` sweeps.

Everything is seed-deterministic and built on the same
:class:`~repro.workloads.programs.Workload` container the tests and
benchmarks already consume.  This is deliberately a *new* module: the
existing ``random_workload`` RNG draw sequence is pinned by dozens of
seeded equivalence sweeps and must not shift.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..model.cube import Cube, CubeSchema, Dimension
from ..model.schema import Schema
from ..model.time import Frequency, month
from ..model.types import STRING, TIME
from .programs import Workload

__all__ = [
    "skewed_panel_workload",
    "deep_chain_workload",
    "revision_storm",
    "scenario_corpus",
]


def _skewed_panel(
    schema: CubeSchema,
    members: List[str],
    n_periods: int,
    rng: random.Random,
) -> Cube:
    """A panel whose member coverage follows a 1/rank (zipf-ish) law:
    member k keeps roughly ``n_periods / (k + 1)`` periods."""
    cube = Cube(schema)
    start = month(2015, 1)
    for rank, member in enumerate(members):
        coverage = max(2, n_periods // (rank + 1))
        for i in range(coverage):
            cube.set(
                (start + i, member),
                round(rng.uniform(50.0, 150.0), 3),
            )
    return cube


def skewed_panel_workload(
    seed: int = 0,
    n_members: int = 12,
    n_periods: int = 24,
) -> Workload:
    """Aggregation-heavy program over a zipf-skewed panel.

    ``g01`` holds the full history, ``g12`` barely two months — group
    sizes span an order of magnitude, which is exactly where columnar
    group-reduce and row-at-a-time engines price apart.
    """
    rng = random.Random(f"skewed-{seed}")
    members = [f"g{k + 1:02d}" for k in range(max(2, n_members))]
    schema = CubeSchema(
        "SKEW",
        [Dimension("m", TIME(Frequency.MONTH)), Dimension("g", STRING)],
        "v",
    )
    source = "\n".join(
        [
            "TOTAL := sum(SKEW, group by m)",
            "GMEAN := avg(SKEW, group by g)",
            "MTREND := ma(TOTAL, 3)",
            "QTOT := sum(SKEW, group by quarter(m) as q, g)",
            "QTREND := cumsum(sum(QTOT, group by q))",
        ]
    )
    data = {"SKEW": _skewed_panel(schema, members, n_periods, rng)}
    return Workload(
        f"skewed-panel-{seed}", Schema([schema], "scenario"), source, data
    )


def deep_chain_workload(
    seed: int = 0,
    depth: int = 8,
    n_periods: int = 24,
    n_members: int = 4,
) -> Workload:
    """A dependency chain ``depth`` statements long.

    The head aggregates the panel down to a time series; every further
    link feeds on the previous one, cycling table functions and scalar
    arithmetic — so dispatch sees many single-subgraph waves and the
    adaptive chooser gets one decision per link instead of one per run.
    """
    rng = random.Random(f"chain-{seed}")
    members = [f"u{k + 1}" for k in range(max(1, n_members))]
    schema = CubeSchema(
        "BASE",
        [Dimension("m", TIME(Frequency.MONTH)), Dimension("u", STRING)],
        "v",
    )
    cube = Cube(schema)
    start = month(2016, 1)
    for member in members:
        for i in range(n_periods):
            cube.set((start + i, member), round(rng.uniform(10.0, 90.0), 3))
    statements = ["C1 := sum(BASE, group by m)"]
    for i in range(2, max(2, depth) + 1):
        previous = f"C{i - 1}"
        step = i % 4
        if step == 0:
            statements.append(f"C{i} := cumsum({previous})")
        elif step == 1:
            statements.append(f"C{i} := ma({previous}, 3)")
        elif step == 2:
            statements.append(f"C{i} := {previous} * 2 + {previous}")
        else:
            statements.append(f"C{i} := {previous} - shift({previous}, 1)")
    data = {"BASE": cube}
    return Workload(
        f"deep-chain-{seed}",
        Schema([schema], "scenario"),
        "\n".join(statements),
        data,
    )


def revision_storm(
    workload: Workload,
    n_storms: int = 5,
    fraction: float = 0.05,
    magnitude: float = 0.1,
    seed: int = 0,
) -> List[Dict[str, Cube]]:
    """Successive small revisions of a workload's elementary data.

    Each storm perturbs ``fraction`` of every elementary cube's tuples
    by up to ``±magnitude`` (relative), *cumulatively* — storm k revises
    storm k-1's data, the way production vintages actually arrive.
    Returns one ``{name: revised cube}`` dict per storm, ready to feed
    ``engine.load`` + ``engine.update`` in sequence.
    """
    rng = random.Random(f"storm-{seed}")
    storms: List[Dict[str, Cube]] = []
    current = {name: cube for name, cube in workload.data.items()}
    for _ in range(max(1, n_storms)):
        revised: Dict[str, Cube] = {}
        for name, cube in current.items():
            fresh = Cube(cube.schema)
            rows = cube.to_rows()
            n_revise = max(1, int(len(rows) * fraction))
            chosen = set(rng.sample(range(len(rows)), min(n_revise, len(rows))))
            for index, row in enumerate(rows):
                key, value = row[:-1], row[-1]
                if index in chosen and value == value:  # skip NaN holes
                    value = round(
                        value * (1.0 + rng.uniform(-magnitude, magnitude)), 6
                    )
                fresh.set(key, value)
            revised[name] = fresh
        storms.append(revised)
        current = revised
    return storms


def scenario_corpus(seed: int = 0, size: int = 6) -> List[Workload]:
    """A mixed batch of scenario workloads, round-robin over the shapes.

    The corpus deliberately interleaves shapes whose cheapest target
    differs — wide skewed aggregations (columnar chase territory) next
    to long scalar/table-function chains (cheap everywhere, so per-call
    overhead dominates) — which is what makes a single static target
    assignment wrong for a large share of subgraphs.
    """
    corpus: List[Workload] = []
    for i in range(max(1, size)):
        variant = seed * 1000 + i
        if i % 2 == 0:
            corpus.append(
                skewed_panel_workload(
                    variant, n_members=8 + 2 * (i % 3), n_periods=24
                )
            )
        else:
            corpus.append(
                deep_chain_workload(variant, depth=6 + (i % 3) * 2)
            )
    return corpus
