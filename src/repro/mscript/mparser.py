"""Lexer and parser for the Matlab subset the Matlab backend emits.

Covers: assignments (including column assignment ``m(:,k) = …``),
element-wise operators (``.*``, ``./``, ``.^``), plain ``+``/``-``,
ranges (``1:2``), the bare colon subscript, function handles (``@f``),
string literals, and horizontal matrix composition ``[a b c]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from ..errors import ReproError

__all__ = [
    "MSyntaxError",
    "MExpr",
    "MNum",
    "MStr",
    "MName",
    "MColon",
    "MRange",
    "MHandle",
    "MUnary",
    "MBinary",
    "MApply",
    "MCompose",
    "MAssign",
    "MColumnAssign",
    "MScript",
    "parse_m",
]


class MSyntaxError(ReproError):
    """Invalid Matlab-subset source."""


class MExpr:
    pass


@dataclass(frozen=True)
class MNum(MExpr):
    value: float


@dataclass(frozen=True)
class MStr(MExpr):
    value: str


@dataclass(frozen=True)
class MName(MExpr):
    name: str


@dataclass(frozen=True)
class MColon(MExpr):
    """The bare ``:`` subscript."""


@dataclass(frozen=True)
class MRange(MExpr):
    low: MExpr
    high: MExpr


@dataclass(frozen=True)
class MHandle(MExpr):
    """A function handle ``@name``."""

    name: str


@dataclass(frozen=True)
class MUnary(MExpr):
    op: str
    operand: MExpr


@dataclass(frozen=True)
class MBinary(MExpr):
    op: str  # + - .* ./ .^ * /
    left: MExpr
    right: MExpr


@dataclass(frozen=True)
class MApply(MExpr):
    """``name(args)`` — indexing when name is a matrix, else a call."""

    name: str
    args: Tuple[MExpr, ...]

    def __init__(self, name, args):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))


@dataclass(frozen=True)
class MCompose(MExpr):
    """``[e1 e2 …]`` — horizontal composition of column blocks."""

    elements: Tuple[MExpr, ...]

    def __init__(self, elements):
        object.__setattr__(self, "elements", tuple(elements))


@dataclass(frozen=True)
class MAssign:
    target: str
    value: MExpr


@dataclass(frozen=True)
class MColumnAssign:
    """``m(:, k) = value``."""

    target: str
    column: MExpr
    value: MExpr


@dataclass(frozen=True)
class MScript:
    statements: Tuple[Any, ...]

    def __init__(self, statements):
        object.__setattr__(self, "statements", tuple(statements))

    def __iter__(self):
        return iter(self.statements)

    def __len__(self):
        return len(self.statements)


@dataclass(frozen=True)
class _Tok:
    type: str  # IDENT NUM STR PUNCT NEWLINE EOF
    value: Any


_PUNCT = [".*", "./", ".^", "(", ")", "[", "]", ",", ";", "=", "+", "-", "*", "/", ":", "@"]


def _tokenize(source: str) -> List[_Tok]:
    tokens: List[_Tok] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in " \t\r":
            i += 1
            continue
        if ch == "\n":
            if tokens and tokens[-1].type != "NEWLINE":
                tokens.append(_Tok("NEWLINE", "\n"))
            i += 1
            continue
        if ch == "%":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "'":
            i += 1
            start = i
            while i < n and source[i] != "'":
                i += 1
            if i >= n:
                raise MSyntaxError("unterminated string literal")
            tokens.append(_Tok("STR", source[start:i]))
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            while i < n and (source[i].isdigit() or source[i] == "."):
                # ".*" etc. must not be swallowed
                if source[i] == "." and i + 1 < n and source[i + 1] in "*/^":
                    break
                i += 1
            tokens.append(_Tok("NUM", float(source[start:i])))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            tokens.append(_Tok("IDENT", source[start:i]))
            continue
        matched = False
        for punct in _PUNCT:
            if source.startswith(punct, i):
                tokens.append(_Tok("PUNCT", punct))
                i += len(punct)
                matched = True
                break
        if not matched:
            raise MSyntaxError(f"unexpected character {ch!r} at {i}")
    if tokens and tokens[-1].type != "NEWLINE":
        tokens.append(_Tok("NEWLINE", "\n"))
    tokens.append(_Tok("EOF", None))
    return tokens


class _MParser:
    def __init__(self, tokens: List[_Tok]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self, offset: int = 0) -> _Tok:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> _Tok:
        token = self._tokens[self._pos]
        if token.type != "EOF":
            self._pos += 1
        return token

    def _accept(self, punct: str) -> bool:
        token = self._peek()
        if token.type == "PUNCT" and token.value == punct:
            self._advance()
            return True
        return False

    def _expect(self, punct: str) -> None:
        if not self._accept(punct):
            raise MSyntaxError(f"expected {punct!r}, found {self._peek().value!r}")

    def _at(self, punct: str) -> bool:
        token = self._peek()
        return token.type == "PUNCT" and token.value == punct

    def _skip_separators(self) -> None:
        while self._peek().type == "NEWLINE" or self._at(";"):
            self._advance()

    # -- grammar -----------------------------------------------------------
    def parse_script(self) -> MScript:
        statements = []
        self._skip_separators()
        while self._peek().type != "EOF":
            statements.append(self._statement())
            self._skip_separators()
        return MScript(statements)

    def _statement(self):
        token = self._peek()
        if token.type != "IDENT":
            raise MSyntaxError(f"expected an assignment, found {token.value!r}")
        name = self._advance().value
        if self._accept("("):
            # m(:, k) = value
            if not self._accept(":"):
                raise MSyntaxError("only m(:, k) column assignment is supported")
            self._expect(",")
            column = self._expr()
            self._expect(")")
            self._expect("=")
            return MColumnAssign(name, column, self._expr())
        self._expect("=")
        return MAssign(name, self._expr())

    def _expr(self) -> MExpr:
        return self._range()

    def _range(self) -> MExpr:
        low = self._additive()
        if self._accept(":"):
            return MRange(low, self._additive())
        return low

    def _additive(self) -> MExpr:
        left = self._multiplicative()
        while True:
            if self._accept("+"):
                left = MBinary("+", left, self._multiplicative())
            elif self._accept("-"):
                left = MBinary("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> MExpr:
        left = self._unary()
        while True:
            if self._accept(".*"):
                left = MBinary(".*", left, self._unary())
            elif self._accept("./"):
                left = MBinary("./", left, self._unary())
            elif self._accept(".^"):
                left = MBinary(".^", left, self._unary())
            elif self._accept("*"):
                left = MBinary("*", left, self._unary())
            elif self._accept("/"):
                left = MBinary("/", left, self._unary())
            else:
                return left

    def _unary(self) -> MExpr:
        if self._accept("-"):
            return MUnary("-", self._unary())
        return self._primary()

    def _primary(self) -> MExpr:
        token = self._peek()
        if token.type == "NUM":
            self._advance()
            return MNum(token.value)
        if token.type == "STR":
            self._advance()
            return MStr(token.value)
        if self._accept("@"):
            handle = self._advance()
            if handle.type != "IDENT":
                raise MSyntaxError("expected a name after @")
            return MHandle(handle.value)
        if self._accept("("):
            inner = self._expr()
            self._expect(")")
            return inner
        if self._accept("["):
            return self._compose()
        if token.type == "IDENT":
            self._advance()
            if self._accept("("):
                return MApply(token.value, self._args())
            return MName(token.value)
        raise MSyntaxError(f"unexpected token {token.value!r}")

    def _args(self) -> List[MExpr]:
        args: List[MExpr] = []
        if not self._at(")"):
            while True:
                if self._at(":") and self._peek(1).value in (",", ")"):
                    self._advance()
                    args.append(MColon())
                else:
                    args.append(self._expr())
                if not self._accept(","):
                    break
        self._expect(")")
        return args

    def _compose(self) -> MCompose:
        elements: List[MExpr] = []
        while not self._at("]"):
            if self._peek().type in ("NEWLINE", "EOF"):
                raise MSyntaxError("unterminated [ ] composition")
            elements.append(self._primary())
        self._expect("]")
        return MCompose(elements)


def parse_m(source: str) -> MScript:
    """Parse Matlab-subset source into a script AST."""
    return _MParser(_tokenize(source)).parse_script()
