"""An interpreter for the Matlab subset the Matlab backend emits.

Symmetric to :mod:`repro.rscript`: parses and executes the rendered
Matlab text directly on the matrix engine (the ``mscript`` backend).
"""

from .minterp import MInterpreter, MInterpreterError, run_m_script
from .mparser import MSyntaxError, parse_m

__all__ = [
    "parse_m",
    "MSyntaxError",
    "MInterpreter",
    "MInterpreterError",
    "run_m_script",
]
