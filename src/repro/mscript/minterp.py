"""Interpreter for the Matlab subset, over the matrix engine.

Executes the scripts the Matlab backend renders, using
:class:`~repro.matrixengine.Matrix` for matrices.  ``name(args)``
resolves the Matlab way: indexing when ``name`` is a bound matrix,
otherwise a function call.  The ``exl_*`` runtime functions and the
``isolateTrend`` family are provided on top of the repro statistics
library, with the seasonal period inferred from the time column's
frequency.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..errors import ReproError
from ..exl.operators import (
    OperatorRegistry,
    OpKind,
    default_registry,
    period_for_frequency,
)
from ..matrixengine import Matrix
from ..model.time import TimePoint
from ..stats.aggregates import get_aggregate
from .mparser import (
    MApply,
    MAssign,
    MBinary,
    MColon,
    MColumnAssign,
    MCompose,
    MExpr,
    MHandle,
    MName,
    MNum,
    MRange,
    MScript,
    MStr,
    MUnary,
    parse_m,
)

__all__ = ["MInterpreterError", "MInterpreter", "run_m_script"]

# Matlab spellings of the aggregate names exl_aggregate receives
_M_AGG_TO_EXL = {
    "mean": "avg",
    "sum": "sum",
    "min": "min",
    "max": "max",
    "median": "median",
    "std": "stddev",
    "var": "var",
    "prod": "product",
    "numel": "count",
}

_M_TF_TO_EXL = {
    "isolateTrend": "stl_t",
    "isolateSeasonal": "stl_s",
    "isolateRemainder": "stl_r",
}


class MInterpreterError(ReproError):
    """Runtime error while interpreting a Matlab script."""


class _Colon:
    """Runtime marker for the bare ``:`` subscript."""


_COLON = _Colon()


class _Handle:
    def __init__(self, name: str):
        self.name = name


def _as_vector(value: Any) -> List[Any]:
    if isinstance(value, list):
        return value
    return [value]


def _elementwise(op: str, a: Any, b: Any) -> Any:
    if isinstance(a, TimePoint) and isinstance(b, (int, float)):
        return a.shift(int(b)) if op == "+" else a.shift(-int(b))
    if op in ("+",):
        return a + b
    if op == "-":
        return a - b
    if op in (".*", "*"):
        return a * b
    if op in ("./", "/"):
        if b == 0:
            raise MInterpreterError("division by zero")
        return a / b
    if op == ".^":
        return a**b
    raise MInterpreterError(f"unknown operator {op!r}")


class MInterpreter:
    """Evaluates parsed Matlab scripts against an environment of matrices."""

    def __init__(self, registry: Optional[OperatorRegistry] = None):
        self.registry = registry or default_registry()
        self.env: Dict[str, Any] = {}
        self._functions: Dict[str, Callable[[List[Any]], Any]] = {
            "join": self._fn_join,
            "sortrows": self._fn_sortrows,
            "exl_aggregate": self._fn_exl_aggregate,
            "exl_outercombine": self._fn_exl_outercombine,
            "arrayfun": self._fn_arrayfun,
        }

    # -- public ----------------------------------------------------------
    def run(self, script: MScript) -> Dict[str, Any]:
        for statement in script:
            if isinstance(statement, MAssign):
                self.env[statement.target] = self.eval(statement.value)
            elif isinstance(statement, MColumnAssign):
                self._column_assign(statement)
            else:
                raise MInterpreterError(f"unsupported statement {statement!r}")
        return self.env

    def run_source(self, source: str) -> Dict[str, Any]:
        return self.run(parse_m(source))

    # -- statements ----------------------------------------------------------
    def _column_assign(self, statement: MColumnAssign) -> None:
        matrix = self.env.get(statement.target)
        if not isinstance(matrix, Matrix):
            raise MInterpreterError(
                f"{statement.target!r} is not a matrix"
            )
        position = int(self._scalar(self.eval(statement.column)))
        values = _as_vector(self.eval(statement.value))
        if len(values) == 1 and matrix.nrow > 1:
            values = values * matrix.nrow
        self.env[statement.target] = matrix.with_column(position, values)

    def _scalar(self, value: Any) -> float:
        if isinstance(value, list):
            if len(value) != 1:
                raise MInterpreterError(f"expected a scalar, got {value!r}")
            value = value[0]
        return float(value)

    # -- expressions -------------------------------------------------------------
    def eval(self, expr: MExpr) -> Any:
        if isinstance(expr, MNum):
            return expr.value
        if isinstance(expr, MStr):
            return expr.value
        if isinstance(expr, MColon):
            return _COLON
        if isinstance(expr, MHandle):
            return _Handle(expr.name)
        if isinstance(expr, MName):
            if expr.name not in self.env:
                raise MInterpreterError(f"undefined variable {expr.name!r}")
            return self.env[expr.name]
        if isinstance(expr, MRange):
            low = int(self._scalar(self.eval(expr.low)))
            high = int(self._scalar(self.eval(expr.high)))
            return list(range(low, high + 1))
        if isinstance(expr, MUnary):
            value = self.eval(expr.operand)
            if isinstance(value, list):
                return [-v for v in value]
            return -value
        if isinstance(expr, MBinary):
            left = _as_vector(self.eval(expr.left))
            right = _as_vector(self.eval(expr.right))
            n = max(len(left), len(right))
            if len(left) == 1:
                left = left * n
            if len(right) == 1:
                right = right * n
            if len(left) != len(right):
                raise MInterpreterError("operand lengths differ")
            out = [_elementwise(expr.op, a, b) for a, b in zip(left, right)]
            return out if n > 1 else out[0]
        if isinstance(expr, MCompose):
            return self._compose([self.eval(e) for e in expr.elements])
        if isinstance(expr, MApply):
            return self._apply(expr)
        raise MInterpreterError(f"cannot evaluate {type(expr).__name__}")

    def _compose(self, blocks: List[Any]) -> Matrix:
        columns: List[List[Any]] = []
        nrow = None
        for block in blocks:
            if isinstance(block, Matrix):
                block_columns = [list(block.col(i + 1)) for i in range(block.ncol)]
            else:
                block_columns = [_as_vector(block)]
            for column in block_columns:
                if nrow is None:
                    nrow = len(column)
                elif len(column) != nrow:
                    raise MInterpreterError("composition blocks differ in height")
                columns.append(column)
        if nrow is None:
            return Matrix([])
        rows = [tuple(column[i] for column in columns) for i in range(nrow)]
        return Matrix.from_rows(rows)

    def _apply(self, expr: MApply) -> Any:
        bound = self.env.get(expr.name)
        if isinstance(bound, Matrix):
            return self._index(bound, [self.eval(a) for a in expr.args])
        if expr.name in self._functions:
            return self._functions[expr.name]([self.eval(a) for a in expr.args])
        if expr.name in _M_TF_TO_EXL:
            return self._table_function(
                _M_TF_TO_EXL[expr.name], [self.eval(a) for a in expr.args], {}
            )
        if expr.name.startswith("exl_"):
            return self._exl_generic(expr)
        # element-wise scalar function from the registry (exp, abs, …)
        if expr.name in self.registry:
            spec = self.registry.get(expr.name)
            if spec.kind in (OpKind.SCALAR, OpKind.DIM_FUNCTION):
                vectors = [_as_vector(self.eval(a)) for a in expr.args]
                length = max(len(v) for v in vectors)
                vectors = [v * length if len(v) == 1 else v for v in vectors]
                out = [spec.impl(*vals) for vals in zip(*vectors)]
                return out if length > 1 else out[0]
        raise MInterpreterError(f"unknown function or variable {expr.name!r}")

    def _index(self, matrix: Matrix, args: List[Any]) -> Any:
        if len(args) != 2:
            raise MInterpreterError("matrix indexing needs two subscripts")
        rows, cols = args
        if not isinstance(rows, _Colon):
            raise MInterpreterError("only m(:, k) indexing is supported")
        position = int(self._scalar(cols))
        return list(matrix.col(position))

    # -- runtime library ------------------------------------------------------
    def _fn_join(self, args: List[Any]) -> Matrix:
        left, left_keys, right, right_keys = args
        left_keys = [int(k) for k in _as_vector(left_keys)]
        right_keys = [int(k) for k in _as_vector(right_keys)]
        return left.join(right, left_keys, right_keys)

    def _fn_sortrows(self, args: List[Any]) -> Matrix:
        matrix, key = args
        return matrix.sort_by([int(self._scalar(key))])

    def _fn_exl_aggregate(self, args: List[Any]) -> Matrix:
        matrix, keys, value_position, func_name = args
        keys = [int(k) for k in _as_vector(keys)]
        exl_name = _M_AGG_TO_EXL.get(str(func_name), str(func_name))
        return matrix.group_aggregate(
            keys, int(self._scalar(value_position)), get_aggregate(exl_name)
        )

    def _fn_exl_outercombine(self, args: List[Any]) -> Matrix:
        left, left_keys, left_value, right, right_keys, right_value, op, default = args
        left_keys = [int(k) for k in _as_vector(left_keys)]
        right_keys = [int(k) for k in _as_vector(right_keys)]
        left_value = int(self._scalar(left_value))
        right_value = int(self._scalar(right_value))
        default = float(default)
        left_map = {
            tuple(row[k - 1] for k in left_keys): float(row[left_value - 1])
            for row in left.rows()
        }
        right_map = {
            tuple(row[k - 1] for k in right_keys): float(row[right_value - 1])
            for row in right.rows()
        }
        combine = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
        }.get(str(op))
        if combine is None:
            raise MInterpreterError(f"unsupported outer operator {op!r}")
        rows = [
            key
            + (combine(left_map.get(key, default), right_map.get(key, default)),)
            for key in left_map.keys() | right_map.keys()
        ]
        return Matrix.from_rows(rows) if rows else Matrix([])

    def _fn_arrayfun(self, args: List[Any]) -> List[Any]:
        handle, values = args[0], _as_vector(args[1])
        if not isinstance(handle, _Handle):
            raise MInterpreterError("arrayfun needs a function handle")
        spec = self.registry.get(handle.name)
        if spec.kind not in (OpKind.SCALAR, OpKind.DIM_FUNCTION):
            raise MInterpreterError(
                f"arrayfun handle @{handle.name} is not a scalar function"
            )
        return [spec.impl(v) for v in values]

    def _table_function(self, exl_name: str, args: List[Any], params: Dict) -> Matrix:
        matrix = args[0]
        if not isinstance(matrix, Matrix) or matrix.ncol < 2:
            raise MInterpreterError(
                f"{exl_name} expects a (time, value) matrix"
            )
        spec = self.registry.get(exl_name)
        series = [(row[0], float(row[-1])) for row in matrix.rows()]
        resolved = dict(params)
        if any(name == "period" for name, _req in spec.params) and "period" not in resolved:
            first = series[0][0] if series else None
            if isinstance(first, TimePoint):
                period = period_for_frequency(first.freq)
                if period is not None:
                    resolved["period"] = period
            if "period" not in resolved:
                raise MInterpreterError(
                    f"{exl_name}: cannot infer the seasonal period"
                )
        result = spec.impl(series, resolved)
        return Matrix.from_rows([(p, float(v)) for p, v in result])

    def _exl_generic(self, expr: MApply) -> Matrix:
        """``exl_<tf>(matrix, param…)`` with positional parameters."""
        name = expr.name[len("exl_"):]
        spec = self.registry.get(name)
        values = [self.eval(a) for a in expr.args]
        params = {
            param_name: values[i + 1]
            for i, (param_name, _req) in enumerate(spec.params)
            if i + 1 < len(values)
        }
        return self._table_function(name, values[:1], params)


def run_m_script(
    source: str,
    matrices: Dict[str, Matrix],
    registry: Optional[OperatorRegistry] = None,
) -> Dict[str, Any]:
    """Parse and run a Matlab script with the given matrices in scope."""
    interpreter = MInterpreter(registry)
    interpreter.env.update(matrices)
    return interpreter.run_source(source)
